package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"strings"
	"testing"

	"kat/internal/history"
)

// randOps builds a batch of canonical operations (the form the text grammar
// round-trips: weight 0 or >1, any client) over nkeys keys.
func randOps(rng *rand.Rand, n, nkeys int) []Op {
	ops := make([]Op, n)
	start := int64(rng.Intn(1000))
	for i := range ops {
		kind := history.KindWrite
		if rng.Intn(2) == 1 {
			kind = history.KindRead
		}
		op := history.Operation{
			Kind:   kind,
			Value:  int64(rng.Intn(2000) - 1000),
			Start:  start,
			Finish: start + 1 + int64(rng.Intn(50)),
		}
		if rng.Intn(4) == 0 {
			op.Weight = int64(2 + rng.Intn(9))
		}
		if rng.Intn(3) == 0 {
			op.Client = rng.Intn(64) - 16
		}
		ops[i] = Op{Key: keyName(rng.Intn(nkeys)), Op: op}
		// Starts wander in both directions so delta encoding sees negatives.
		start += int64(rng.Intn(21) - 7)
	}
	return ops
}

func keyName(i int) string {
	return "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10))
}

func decodeAll(t *testing.T, data []byte) []Op {
	t.Helper()
	d := NewDecoder(bytes.NewReader(data))
	var out []Op
	for {
		ops, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ops...)
	}
}

func sameOps(t *testing.T, want, got []Op) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		w.Op.ID, g.Op.ID = 0, 0 // IDs are not carried by the frame
		if w != g {
			t.Fatalf("op %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 17, 512, 3000} {
		ops := randOps(rng, n, 7)
		frame, err := EncodeSelfContained(nil, ops, false)
		if err != nil {
			t.Fatalf("encode %d ops: %v", n, err)
		}
		sameOps(t, ops, decodeAll(t, frame))
	}
}

func TestRoundTripCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := randOps(rng, 1024, 3)
	plain, err := EncodeSelfContained(nil, ops, false)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := EncodeSelfContained(nil, ops, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain) {
		t.Fatalf("compressed frame (%d bytes) not smaller than plain (%d bytes)", len(packed), len(plain))
	}
	sameOps(t, ops, decodeAll(t, packed))
}

// TestMultiFrameDictionary checks that a stream's later frames reuse the
// dictionary instead of re-listing keys, and still decode identically.
func TestMultiFrameDictionary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := randOps(rng, 600, 5)
	enc := NewEncoder()
	var stream []byte
	frameSizes := make([]int, 0, 3)
	for i, kop := range ops {
		if err := enc.Add(kop.Key, kop.Op); err != nil {
			t.Fatal(err)
		}
		if (i+1)%200 == 0 {
			before := len(stream)
			stream = enc.AppendFrame(stream)
			frameSizes = append(frameSizes, len(stream)-before)
		}
	}
	sameOps(t, ops, decodeAll(t, stream))
	// All keys appear in the first 200 ops with overwhelming probability,
	// so later frames should be leaner per op than a self-contained run.
	self, err := EncodeSelfContained(nil, ops[200:400], false)
	if err != nil {
		t.Fatal(err)
	}
	if frameSizes[1] >= len(self) {
		t.Fatalf("dictionary frame (%d bytes) not smaller than self-contained frame (%d bytes)", frameSizes[1], len(self))
	}
}

func TestSelfContainedFramesDecodeAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ops := randOps(rng, 100, 4)
	enc := NewEncoder()
	enc.SetSelfContained(true)
	var frames [][]byte
	for i, kop := range ops {
		if err := enc.Add(kop.Key, kop.Op); err != nil {
			t.Fatal(err)
		}
		if (i+1)%25 == 0 {
			frames = append(frames, enc.AppendFrame(nil))
		}
	}
	// Decode each frame with a fresh decoder — the WAL replay pattern.
	var got []Op
	for _, f := range frames {
		d := NewDecoder(bytes.NewReader(f))
		for {
			ops, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("self-contained frame: %v", err)
			}
			for _, kop := range ops {
				got = append(got, kop)
			}
		}
	}
	sameOps(t, ops, got)
}

func TestEncoderReuseAcrossStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc := NewEncoder()
	for trial := 0; trial < 3; trial++ {
		enc.Reset()
		ops := randOps(rng, 64, 3)
		for _, kop := range ops {
			if err := enc.Add(kop.Key, kop.Op); err != nil {
				t.Fatal(err)
			}
		}
		sameOps(t, ops, decodeAll(t, enc.AppendFrame(nil)))
	}
}

func TestDecoderReset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randOps(rng, 32, 2)
	b := randOps(rng, 32, 2)
	fa, _ := EncodeSelfContained(nil, a, false)
	fb, _ := EncodeSelfContained(nil, b, false)
	d := NewDecoder(bytes.NewReader(fa))
	got, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	sameOps(t, a, got)
	d.Reset(bytes.NewReader(fb))
	if d.Offset() != 0 {
		t.Fatalf("offset after Reset = %d, want 0", d.Offset())
	}
	got, err = d.Next()
	if err != nil {
		t.Fatal(err)
	}
	sameOps(t, b, got)
}

func TestAddBytesMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := randOps(rng, 128, 6)
	ea, eb := NewEncoder(), NewEncoder()
	for _, kop := range ops {
		if err := ea.Add(kop.Key, kop.Op); err != nil {
			t.Fatal(err)
		}
		if err := eb.AddBytes([]byte(kop.Key), kop.Op); err != nil {
			t.Fatal(err)
		}
	}
	fa, fb := ea.AppendFrame(nil), eb.AppendFrame(nil)
	if !bytes.Equal(fa, fb) {
		t.Fatal("Add and AddBytes produced different frames")
	}
}

func TestEncoderRejectsBadKeys(t *testing.T) {
	enc := NewEncoder()
	op := history.Operation{Kind: history.KindWrite, Value: 1, Start: 1, Finish: 2}
	for _, key := range []string{"", "a b", "x;y", "x#y", "a\nb", "a\tb"} {
		if err := enc.Add(key, op); err == nil {
			t.Fatalf("Add(%q) accepted a key outside the trace grammar", key)
		}
	}
	if err := enc.Add("ok", history.Operation{Kind: 0}); err == nil {
		t.Fatal("Add accepted an invalid operation kind")
	}
}

// corrupt variants: every mutation must surface as a *DecodeError with a
// plausible offset, never a panic or a silent wrong decode.
func TestMalformedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ops := randOps(rng, 64, 3)
	frame, err := EncodeSelfContained(nil, ops, false)
	if err != nil {
		t.Fatal(err)
	}
	expectErr := func(name string, data []byte, wantSub string) {
		t.Helper()
		d := NewDecoder(bytes.NewReader(data))
		_, err := d.Next()
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: got %v, want *DecodeError", name, err)
		}
		if de.Offset < 0 || de.Offset > int64(len(data))+1 {
			t.Fatalf("%s: offset %d outside the stream", name, de.Offset)
		}
		if wantSub != "" && !strings.Contains(de.Msg, wantSub) {
			t.Fatalf("%s: message %q does not mention %q", name, de.Msg, wantSub)
		}
	}

	for cut := 1; cut < len(frame); cut++ {
		expectErr("torn frame", frame[:cut], "")
	}
	bad := bytes.Clone(frame)
	bad[0] = 'X'
	expectErr("bad magic", bad, "bad magic")

	bad = bytes.Clone(frame)
	bad[4] = 99
	expectErr("bad version", bad, "unsupported frame version")

	bad = bytes.Clone(frame)
	bad[5] |= 0x80
	expectErr("unknown flags", bad, "unknown frame flags")

	// Flip one payload byte: the CRC must catch it.
	bad = bytes.Clone(frame)
	bad[len(bad)/2] ^= 0x20
	expectErr("payload flip", bad, "")

	// Flip a CRC byte.
	bad = bytes.Clone(frame)
	bad[len(bad)-1] ^= 0xff
	expectErr("crc flip", bad, "checksum mismatch")

	// Garbage after a valid frame is a malformed second frame, not EOF.
	withTrailer := append(bytes.Clone(frame), "w k 1 2 3\n"...)
	d := NewDecoder(bytes.NewReader(withTrailer))
	if _, err := d.Next(); err != nil {
		t.Fatalf("valid first frame: %v", err)
	}
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("trailing garbage: got %v, want DecodeError", err)
	}
}

func TestMalformedPayloads(t *testing.T) {
	// Hand-build payloads around a frame skeleton to hit the payload-level
	// validations the CRC cannot (the CRC is recomputed over each).
	build := func(payload []byte) []byte {
		enc := NewEncoder()
		_ = enc.Add("k", history.Operation{Kind: history.KindWrite, Value: 1, Start: 1, Finish: 2})
		frame := enc.AppendFrame(nil)
		// Splice: keep the 6-byte header shape but re-emit length+payload+crc.
		out := bytes.Clone(frame[:6])
		out = appendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		return appendCRC(out, payload)
	}
	cases := []struct {
		name    string
		payload []byte
		wantSub string
	}{
		{"empty payload", nil, "truncated dictionary count"},
		{"huge dict count", []byte{0xff, 0xff, 0xff, 0xff, 0x0f}, "exceeds payload size"},
		{"key overrun", []byte{1, 10, 'k'}, "overrun"},
		{"bad key alphabet", []byte{1, 3, 'a', ' ', 'b', 0}, "not expressible"},
		{"huge op count", []byte{0, 0xff, 0xff, 0xff, 0xff, 0x0f}, "exceeds payload size"},
		{"key id out of range", []byte{0, 1, 1 << 3, 2, 2, 2}, "outside"},
		{"truncated op", []byte{1, 1, 'k', 1, 0}, "truncated operation"},
		{"trailing bytes", []byte{1, 1, 'k', 1, 0, 2, 2, 2, 9, 9}, "trailing bytes"},
	}
	for _, tc := range cases {
		d := NewDecoder(bytes.NewReader(build(tc.payload)))
		_, err := d.Next()
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: got %v, want *DecodeError", tc.name, err)
		}
		if !strings.Contains(de.Msg, tc.wantSub) {
			t.Fatalf("%s: message %q does not mention %q", tc.name, de.Msg, tc.wantSub)
		}
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendCRC(frame, payload []byte) []byte {
	c := crc32.Checksum(payload, castagnoli)
	return append(frame, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

func TestIsMagic(t *testing.T) {
	if !IsMagic([]byte("KAVWxx")) {
		t.Fatal("IsMagic rejected a frame prefix")
	}
	for _, s := range []string{"", "K", "KAV", "KAVX", "w k 1 2 3", "# comment"} {
		if IsMagic([]byte(s)) {
			t.Fatalf("IsMagic accepted %q", s)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}
