// Package wire is the binary batch codec of the ingest path: a versioned,
// length-prefixed frame carrying a batch of keyed operations in a form that
// decodes straight into the session's batch entry points without
// materializing any per-operation text or strings.
//
// # Frame layout
//
//	offset  size      field
//	0       4         magic "KAVW"
//	4       1         version (currently 1)
//	5       1         flags (bit 0: payload is DEFLATE-compressed;
//	                         bit 1: reset the key dictionary before this
//	                         frame; other bits must be zero)
//	6       uvarint   payload length in bytes, as stored (post-compression)
//	...     n         payload
//	...     4         CRC32C (Castagnoli) of the stored payload bytes,
//	                  little-endian
//
// # Payload layout (after decompression)
//
//	uvarint           number of dictionary additions
//	per addition:     uvarint key length, then the key bytes; the new key's
//	                  id is the dictionary size before the addition
//	uvarint           number of operations
//	per operation:
//	  uvarint head    keyID<<3 | kind<<2 | hasWeight<<1 | hasClient
//	                  (kind: 0 = write, 1 = read)
//	  varint          value (zigzag)
//	  varint          start, as a delta from the previous operation's start
//	                  in this frame (zigzag; the frame's first operation is
//	                  a delta from zero, so frames stand alone in time)
//	  varint          finish - start (zigzag)
//	  [uvarint]       weight, if hasWeight
//	  [varint]        client (zigzag), if hasClient
//
// # Dictionary semantics
//
// The key dictionary persists across the frames of one stream (one encoder
// feeding one decoder, e.g. a single /ingest request body): a key costs its
// bytes once, then a varint id per operation. A frame carrying the
// dict-reset flag clears the dictionary before applying its own additions —
// self-contained frames (used for WAL records, which are replayed
// individually) set the flag and re-list every key they reference.
//
// Keys use the same alphabet as the keyed text grammar — non-empty, no
// whitespace, ';', or '#' — so every durable path (text WAL records, spill
// blobs, checkpoint segment bodies) can round-trip operations that arrived
// in binary. The decoder rejects keys outside the alphabet.
//
// # Versioning rules
//
// The version byte names the payload layout. Decoders reject versions they
// do not know and flag bits they do not know (a frame is never "partially"
// understood); new optional behavior must come with a new flag bit, new
// layout with a new version. CRC covers the stored payload only — header
// corruption is caught by the magic/version/flag checks and, transitively,
// by the CRC reading the wrong region.
package wire

import (
	"fmt"
	"hash/crc32"

	"kat/internal/history"
)

// ContentType is the MIME type negotiating binary ingest on POST /ingest.
const ContentType = "application/x-kav-wire"

// Version is the frame layout version this package encodes and decodes.
const Version = 1

// Frame flag bits.
const (
	flagCompressed = 1 << 0 // payload is DEFLATE-compressed
	flagDictReset  = 1 << 1 // clear the key dictionary before this frame
	flagKnown      = flagCompressed | flagDictReset
)

// magic identifies a frame (and, by sniffing, a binary stream).
var magic = [4]byte{'K', 'A', 'V', 'W'}

// Op pairs a register key with one operation — the element the codec
// encodes and decodes. trace.KeyedOp aliases it, so decoded batches feed
// Session.AppendBatch with no conversion.
type Op struct {
	Key string
	Op  history.Operation
}

// IsMagic reports whether b begins with a wire frame: the magic-byte sniff
// distinguishing binary inputs from the keyed text grammar (no valid text
// trace starts with these bytes — 'K' is not an operation kind).
func IsMagic(b []byte) bool {
	return len(b) >= len(magic) && b[0] == magic[0] && b[1] == magic[1] &&
		b[2] == magic[2] && b[3] == magic[3]
}

// Decode limits: backstops against corrupt or hostile length fields, sized
// to never reject legitimate frames (the encoder splits batches well below
// these).
const (
	// maxPayloadBytes caps one frame's stored and decompressed payload —
	// the same 1 GiB backstop the text scanner path enforces per line.
	maxPayloadBytes = 1 << 30
	// maxKeyBytes caps one dictionary key.
	maxKeyBytes = 1 << 20
)

// castagnoli is the CRC32C table (the polynomial with hardware support on
// amd64/arm64, the same checksum the WAL framing uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DecodeError reports a malformed frame, with the byte offset into the
// stream (counted from the first byte the decoder read) where the defect
// was detected — serving layers surface it in typed 400 responses.
type DecodeError struct {
	// Offset is the absolute stream offset of the failure.
	Offset int64
	// Msg describes the defect.
	Msg string
	// Err is the underlying cause, if any (e.g. io.ErrUnexpectedEOF for a
	// torn frame).
	Err error
}

func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("wire: %s at byte offset %d: %v", e.Msg, e.Offset, e.Err)
	}
	return fmt.Sprintf("wire: %s at byte offset %d", e.Msg, e.Offset)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// zigzag maps signed to unsigned so small magnitudes of either sign encode
// in few varint bytes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// validKeyByte reports whether c may appear in a key: the keyed text
// grammar's alphabet (anything but whitespace, ';', and '#'), which keeps
// binary-ingested keys round-trippable through every text-encoded durable
// path.
func validKeyByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\v', '\f', ';', '#':
		return false
	}
	return true
}

// ValidKey reports whether key is expressible in the trace grammar (and so
// accepted by the decoder).
func ValidKey[K string | []byte](key K) bool {
	if len(key) == 0 {
		return false
	}
	for i := 0; i < len(key); i++ {
		if !validKeyByte(key[i]) {
			return false
		}
	}
	return true
}
