package witness

import (
	"strings"
	"testing"

	"kat/internal/history"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestValidateAccepts(t *testing.T) {
	// w1 r1 w2 r2 in real-time order.
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	if err := Validate(p, []int{0, 1, 2, 3}, 1); err != nil {
		t.Errorf("valid witness rejected: %v", err)
	}
}

func TestValidateWrongLength(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	if err := Validate(p, []int{0}, 1); err == nil {
		t.Error("short witness accepted")
	}
}

func TestValidateDuplicateOp(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	if err := Validate(p, []int{0, 0}, 1); err == nil {
		t.Error("duplicate op accepted")
	}
}

func TestValidateOutOfRange(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	if err := Validate(p, []int{0, 5}, 1); err == nil {
		t.Error("out-of-range op accepted")
	}
}

func TestValidateOrderViolation(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	// Putting r2 before w1 breaks both validity and read-after-write.
	err := Validate(p, []int{3, 0, 1, 2}, 1)
	if err == nil {
		t.Fatal("invalid order accepted")
	}
}

func TestValidateStaleness(t *testing.T) {
	// Order w1 w2 r1: read of 1 has one intervening write → 2-atomic
	// but not 1-atomic.
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 35 45")
	order := []int{0, 1, 2}
	if err := Validate(p, order, 1); err == nil {
		t.Error("1-stale witness accepted at k=1")
	} else if !strings.Contains(err.Error(), "stale") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := Validate(p, order, 2); err != nil {
		t.Errorf("2-atomic witness rejected at k=2: %v", err)
	}
}

func TestValidateReadBeforeDictatingWrite(t *testing.T) {
	// Concurrent write and read of the same value; order r before w.
	p := prep(t, "w 1 0 20; r 1 5 30")
	if err := Validate(p, []int{1, 0}, 1); err == nil {
		t.Error("read placed before dictating write accepted")
	}
}

func TestValidateWeighted(t *testing.T) {
	// w1 (weight 1) then w2 (weight 5) then r1: total separating weight
	// for r1 = weight(w1) + weight(w2) = 6.
	p := prep(t, "w 1 0 10 weight=1; w 2 20 30 weight=5; r 1 35 45")
	order := []int{0, 1, 2}
	if err := ValidateWeighted(p, order, 5); err == nil {
		t.Error("weight-6 separation accepted at bound 5")
	}
	if err := ValidateWeighted(p, order, 6); err != nil {
		t.Errorf("weight-6 separation rejected at bound 6: %v", err)
	}
}

func TestValidateReadsDoNotCount(t *testing.T) {
	// Intervening reads must not add to staleness.
	p := prep(t, "w 1 0 10; w 2 12 18; r 2 20 30; r 2 32 40; r 1 42 50")
	// Order: w1 w2 r2 r2' r1 — r1 separated from w1 by one write only.
	if err := Validate(p, []int{0, 1, 2, 3, 4}, 2); err != nil {
		t.Errorf("reads counted as writes: %v", err)
	}
}
