// Package witness independently validates total orders produced by the
// verification algorithms: it checks that a proposed order is a valid total
// order (conforms to the "precedes" partial order of Section II-A) and that
// it is k-atomic (every read follows its dictating write separated by at
// most k-1 other writes) or weighted-k-atomic (Section V semantics).
//
// Every checker in this repository can emit the order it found; tests pass
// those orders through this package so that a bug in a checker cannot
// silently vouch for itself.
package witness

import (
	"fmt"
	"math"

	"kat/internal/history"
)

// Validate checks that order is a permutation of all operation indices of p,
// is valid, and is k-atomic. A nil error means the witness proves
// k-atomicity.
func Validate(p *history.Prepared, order []int, k int) error {
	return validate(p, order, int64(k), false, nil)
}

// Scratch holds the position/permutation buffers Validate needs, so that
// repeated validations (e.g. from a reusable Verifier) allocate nothing at
// steady state. A zero Scratch is ready to use.
type Scratch struct {
	pos  []int
	seen []bool
}

// ValidateScratch is Validate reusing s's buffers.
func ValidateScratch(p *history.Prepared, order []int, k int, s *Scratch) error {
	return validate(p, order, int64(k), false, s)
}

// ValidateWeighted checks the witness under the weighted semantics of
// Section V: the total weight of writes from the dictating write (inclusive)
// to each dictated read is at most bound.
func ValidateWeighted(p *history.Prepared, order []int, bound int64) error {
	return validate(p, order, bound, true, nil)
}

func validate(p *history.Prepared, order []int, bound int64, weighted bool, s *Scratch) error {
	n := p.Len()
	if len(order) != n {
		return fmt.Errorf("witness: order has %d ops, history has %d", len(order), n)
	}
	if s == nil {
		s = &Scratch{}
	}
	if len(s.pos) < n {
		s.pos = make([]int, n)
		s.seen = make([]bool, n)
	}
	pos, seen := s.pos[:n], s.seen[:n]
	clear(seen)
	for i, op := range order {
		if op < 0 || op >= n {
			return fmt.Errorf("witness: op index %d out of range", op)
		}
		if seen[op] {
			return fmt.Errorf("witness: op %d appears twice", op)
		}
		seen[op] = true
		pos[op] = i
	}
	// Validity: if a precedes b in real time, a must precede b in the order.
	// A violation is a position pair i < j with Op(order[j]).Finish <
	// Op(order[i]).Start, so it suffices to sweep the order backward
	// tracking the minimum finish over each suffix and compare it against
	// every earlier start: O(n), with the offending pair recovered by a
	// pairwise rescan only on failure.
	minSuffixFinish := int64(math.MaxInt64)
	for i := n - 1; i >= 0; i-- {
		if minSuffixFinish < p.Op(order[i]).Start {
			for j := i + 1; j < n; j++ {
				a, b := order[i], order[j]
				if p.Op(b).Precedes(p.Op(a)) {
					return fmt.Errorf("witness: op %d precedes op %d in time but follows it in the order", b, a)
				}
			}
		}
		if f := p.Op(order[i]).Finish; f < minSuffixFinish {
			minSuffixFinish = f
		}
	}
	// k-atomicity / weighted k-atomicity.
	for r := 0; r < n; r++ {
		if !p.Op(r).IsRead() {
			continue
		}
		w := p.DictatingWrite[r]
		if pos[w] > pos[r] {
			return fmt.Errorf("witness: read %d placed before its dictating write %d", r, w)
		}
		var sep int64
		if weighted {
			sep = p.Op(w).EffectiveWeight()
		} else {
			sep = 1
		}
		for i := pos[w] + 1; i < pos[r]; i++ {
			op := order[i]
			if !p.Op(op).IsWrite() {
				continue
			}
			if weighted {
				sep += p.Op(op).EffectiveWeight()
			} else {
				sep++
			}
		}
		if sep > bound {
			return fmt.Errorf("witness: read %d is %d-stale from write %d, bound %d", r, sep, w, bound)
		}
	}
	return nil
}
