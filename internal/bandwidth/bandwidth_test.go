package bandwidth

import (
	"math/rand"
	"testing"

	"kat/internal/generator"
)

func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func complete(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func star(leaves int) *Graph {
	g := NewGraph(leaves + 1)
	for i := 1; i <= leaves; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func TestKnownBandwidths(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewGraph(0), 0},
		{"singleton", NewGraph(1), 0},
		{"edgeless", NewGraph(5), 0},
		{"path5", path(5), 1},
		{"path10", path(10), 1},
		{"cycle4", cycle(4), 2},
		{"cycle7", cycle(7), 2},
		{"K4", complete(4), 3},
		{"K6", complete(6), 5},
		{"star4", star(4), 2},
		{"star5", star(5), 3},
		{"star6", star(6), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k, layout := tt.g.Bandwidth()
			if k != tt.want {
				t.Fatalf("Bandwidth = %d, want %d", k, tt.want)
			}
			if w := tt.g.Width(layout); w != k && !(k == 0 && w == 0) {
				t.Errorf("optimal layout has width %d, want %d", w, k)
			}
		})
	}
}

func TestDecideMonotone(t *testing.T) {
	g := star(6) // bandwidth 3
	for k := 0; k < 3; k++ {
		if _, ok := g.Decide(k); ok {
			t.Errorf("Decide(%d) accepted below bandwidth", k)
		}
	}
	for k := 3; k <= 6; k++ {
		if _, ok := g.Decide(k); !ok {
			t.Errorf("Decide(%d) rejected above bandwidth", k)
		}
	}
	if _, ok := g.Decide(-1); ok {
		t.Error("negative k accepted")
	}
}

func TestWidthValidation(t *testing.T) {
	g := path(3)
	if g.Width(Layout{0, 1}) != -1 {
		t.Error("short layout accepted")
	}
	if g.Width(Layout{0, 0, 1}) != -1 {
		t.Error("duplicate vertex accepted")
	}
	if g.Width(Layout{0, 9, 1}) != -1 {
		t.Error("out-of-range vertex accepted")
	}
	if w := g.Width(Layout{0, 1, 2}); w != 1 {
		t.Errorf("path width = %d, want 1", w)
	}
	if w := g.Width(Layout{1, 0, 2}); w != 2 {
		t.Errorf("re-ordered path width = %d, want 2", w)
	}
}

func TestAddEdgeGuards(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 0)  // self loop ignored
	g.AddEdge(0, 9)  // out of range ignored
	g.AddEdge(-1, 1) // out of range ignored
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate ignored
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
}

// TestAgainstBruteForce cross-checks the branch-and-bound bandwidth against
// exhaustive permutation search on random small graphs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		want := bruteForceBandwidth(g)
		got, layout := g.Bandwidth()
		if got != want {
			t.Fatalf("trial %d (n=%d): Bandwidth = %d, want %d", trial, n, got, want)
		}
		if g.Edges() > 0 && g.Width(layout) != got {
			t.Fatalf("trial %d: layout width %d != bandwidth %d", trial, g.Width(layout), got)
		}
	}
}

func bruteForceBandwidth(g *Graph) int {
	perm := make([]int, g.N)
	for i := range perm {
		perm[i] = i
	}
	best := g.N
	var rec func(i int)
	rec = func(i int) {
		if i == g.N {
			if w := g.Width(perm); w < best {
				best = w
			}
			return
		}
		for j := i; j < g.N; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestCuthillMcKeeIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		rcm := g.CuthillMcKee()
		w := g.Width(rcm)
		if w == -1 {
			t.Fatalf("trial %d: RCM produced an invalid layout %v", trial, rcm)
		}
		exact, _ := g.Bandwidth()
		if w < exact {
			t.Fatalf("trial %d: RCM width %d below exact bandwidth %d", trial, w, exact)
		}
	}
}

func TestFromIntervals(t *testing.T) {
	g, err := FromIntervals([]int64{0, 5, 20}, []int64{10, 15, 30})
	if err != nil {
		t.Fatalf("FromIntervals: %v", err)
	}
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1 (only [0,10] and [5,15] overlap)", g.Edges())
	}
	if _, err := FromIntervals([]int64{0}, []int64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestFromHistoryIntervalGraph(t *testing.T) {
	// Sequential histories give edgeless graphs (bandwidth 0); concurrent
	// histories give connected overlap structure.
	seq := generator.KAtomic(generator.Config{Seed: 1, Ops: 12, Concurrency: 1})
	g := FromHistory(seq)
	k, _ := g.Bandwidth()
	if k > 1 {
		t.Errorf("near-sequential history has interval-graph bandwidth %d", k)
	}
	conc := generator.KAtomic(generator.Config{Seed: 1, Ops: 12, Concurrency: 8})
	g2 := FromHistory(conc)
	if g2.Edges() == 0 {
		t.Error("concurrent history produced an edgeless interval graph")
	}
}
