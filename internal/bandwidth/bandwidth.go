// Package bandwidth implements the graph bandwidth problem (GBW) that
// Section VI of the paper relates to k-AV: arrange a graph's vertices on a
// line so that adjacent vertices sit at most k apart. GBW is NP-complete in
// general (Papadimitriou), polynomial for fixed k (Saxe), and O(n log n) on
// interval graphs (Kleitman–Vohra) — but, as the paper stresses, the special
// insight behind those algorithms does not transfer to k-AV, which is why
// LBT and FZF had to be invented. This package provides the machinery to
// explore that relationship empirically:
//
//   - an exact branch-and-bound decision procedure and minimizer (exponential
//     worst case, pruned; intended for small graphs);
//   - the reverse Cuthill–McKee heuristic as a fast upper bound;
//   - interval-graph construction from operation intervals, connecting
//     histories to their zone/overlap structure.
package bandwidth

import (
	"fmt"
	"sort"

	"kat/internal/history"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates are
// ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns v's adjacency list (not a copy; do not modify).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// FromIntervals builds the interval graph of the given closed intervals
// (vertices adjacent iff intervals intersect).
func FromIntervals(lo, hi []int64) (*Graph, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("bandwidth: %d lows vs %d highs", len(lo), len(hi))
	}
	g := NewGraph(len(lo))
	for i := 0; i < len(lo); i++ {
		for j := i + 1; j < len(lo); j++ {
			if lo[i] <= hi[j] && lo[j] <= hi[i] {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}

// FromHistory builds the interval graph of a history's operation intervals.
func FromHistory(h *history.History) *Graph {
	lo := make([]int64, h.Len())
	hi := make([]int64, h.Len())
	for i, op := range h.Ops {
		lo[i], hi[i] = op.Start, op.Finish
	}
	g, _ := FromIntervals(lo, hi) // lengths match by construction
	return g
}

// Layout is a vertex ordering: Layout[i] is the vertex at position i.
type Layout []int

// Width returns the maximum edge stretch of the layout, 0 for edgeless
// graphs, or -1 if the layout is not a permutation of the graph's vertices.
func (g *Graph) Width(l Layout) int {
	if len(l) != g.N {
		return -1
	}
	pos := make([]int, g.N)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range l {
		if v < 0 || v >= g.N || pos[v] != -1 {
			return -1
		}
		pos[v] = i
	}
	width := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			if d := pos[u] - pos[v]; d > width {
				width = d
			} else if -d > width {
				width = -d
			}
		}
	}
	return width
}

// CuthillMcKee returns the reverse Cuthill–McKee ordering, a classic
// bandwidth-reducing heuristic: BFS from a minimum-degree vertex of each
// component, visiting neighbors in degree order, then reverse.
func (g *Graph) CuthillMcKee() Layout {
	visited := make([]bool, g.N)
	order := make([]int, 0, g.N)
	degree := func(v int) int { return len(g.adj[v]) }

	// Component roots: minimum degree first.
	roots := make([]int, g.N)
	for i := range roots {
		roots[i] = i
	}
	sort.SliceStable(roots, func(a, b int) bool { return degree(roots[a]) < degree(roots[b]) })

	for _, root := range roots {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			next := make([]int, 0, len(g.adj[v]))
			for _, w := range g.adj[v] {
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
				}
			}
			sort.SliceStable(next, func(a, b int) bool { return degree(next[a]) < degree(next[b]) })
			queue = append(queue, next...)
		}
	}
	// Reverse (RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Decide reports whether the graph has bandwidth <= k, and a witness layout
// when it does. Branch and bound over positions with deadline pruning;
// exponential worst case (GBW is NP-complete), fine for small graphs.
func (g *Graph) Decide(k int) (Layout, bool) {
	if k < 0 {
		return nil, false
	}
	if g.N == 0 {
		return Layout{}, true
	}
	// Quick accept via RCM.
	if rcm := g.CuthillMcKee(); g.Width(rcm) <= k {
		return rcm, true
	}
	layout := make([]int, g.N)
	pos := make([]int, g.N)
	for i := range pos {
		pos[i] = -1
	}
	var dfs func(p int) bool
	dfs = func(p int) bool {
		if p == g.N {
			return true
		}
		for v := 0; v < g.N; v++ {
			if pos[v] != -1 {
				continue
			}
			ok := true
			for _, u := range g.adj[v] {
				if pos[u] != -1 && p-pos[u] > k {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Deadline pruning: any placed vertex with an unplaced
			// neighbor must still be reachable within k.
			pos[v] = p
			layout[p] = v
			dead := false
			for u := 0; u < g.N && !dead; u++ {
				if pos[u] == -1 || p-pos[u] < k {
					continue
				}
				for _, w := range g.adj[u] {
					if pos[w] == -1 {
						dead = true
						break
					}
				}
			}
			if !dead && dfs(p+1) {
				return true
			}
			pos[v] = -1
		}
		return false
	}
	if dfs(0) {
		out := make(Layout, g.N)
		copy(out, layout)
		return out, true
	}
	return nil, false
}

// Bandwidth computes the exact bandwidth and an optimal layout by probing
// k upward from a trivial lower bound; the RCM width bounds the work above.
func (g *Graph) Bandwidth() (int, Layout) {
	if g.N == 0 {
		return 0, Layout{}
	}
	// Lower bound: ceil(maxDegree / 2).
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := len(g.adj[v]); d > maxDeg {
			maxDeg = d
		}
	}
	lo := (maxDeg + 1) / 2
	for k := lo; ; k++ {
		if l, ok := g.Decide(k); ok {
			return k, l
		}
	}
}
