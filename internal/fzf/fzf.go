// Package fzf implements the FZF (Forward Zones First) 2-atomicity
// verification algorithm of Section IV (Figure 4) of the paper, which runs
// in O(n log n) even in the worst case (Theorem 4.6).
//
// Stage 1 decomposes the history into the maximal chunks of its chunk set
// CS(H) plus dangling backward clusters (package zone). Stage 2 decides
// 2-atomicity of each chunk independently by testing a constant number of
// candidate total orders over the chunk's dictating writes: T_F (forward
// writes by increasing zone low endpoint), T'_F (T_F with the first two
// writes swapped), and — for chunks with one or two backward clusters — the
// backward writes prepended/appended around them (Lemmas 4.2 and 4.3 prove
// these are the only possible viable orders; three or more backward clusters
// are immediately fatal). Each candidate order is checked for viability with
// a simplified, backtracking-free LBT pass. Stage 3 declares the history
// 2-atomic iff every chunk passed (Lemma 4.1).
//
// The hot path is allocation-free at steady state: CheckScratch runs the
// whole pipeline out of a reusable Scratch arena (dense slice-indexed
// position lookups instead of maps, flat pooled buffers instead of
// per-candidate slices).
package fzf

import (
	"fmt"
	"slices"

	"kat/internal/history"
	"kat/internal/witness"
	"kat/internal/zone"
)

// Result reports the decision and diagnostics.
type Result struct {
	// Atomic is true iff the history is 2-atomic.
	Atomic bool
	// Witness is a valid 2-atomic total order (operation indices) when
	// Atomic is true, assembled per Lemma 4.1 from per-chunk orders and
	// dangling clusters. When produced by CheckScratch it aliases the
	// Scratch and is valid only until the next call with that Scratch.
	Witness []int
	// Chunks is the number of maximal chunks examined.
	Chunks int
	// Dangling is the number of dangling (backward) clusters.
	Dangling int
	// OrdersTried counts candidate total orders tested for viability.
	OrdersTried int
	// FailedChunk is the index of the chunk that failed (when !Atomic and
	// the failure was per-chunk), else -1.
	FailedChunk int
	// Reason describes the failure (diagnostics; empty on success).
	Reason string
}

// Scratch is a reusable buffer arena for CheckScratch. A zero Scratch is
// ready to use; buffers grow to the largest history seen and are reused, so
// repeated checks of same-sized histories allocate nothing.
type Scratch struct {
	zone       zone.Scratch
	pos        []int  // dense op index -> position in current chunk's ops; -1 = absent
	removed    []bool // per-candidate placement marks over chunk positions
	ops        []int  // current chunk's operation indices in start order
	tfPrime    []int  // T'_F buffer (T_F with the first two writes swapped)
	containers []int  // flat per-slot container-read storage
	slotLo     []int  // container range starts, indexed by write position
	slotHi     []int  // container range ends
	placed     []int  // flat placed per-chunk orders
	elements   []element
	witness    []int
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the dense position index for histories of p's size. The index
// holds -1 everywhere between chunks (entries are restored after each use).
func (s *Scratch) ensure(p *history.Prepared) {
	if n := p.Len(); len(s.pos) < n {
		old := len(s.pos)
		s.pos = append(s.pos[:old:old], make([]int, n-old)...)
		for i := old; i < n; i++ {
			s.pos[i] = -1
		}
	}
}

// element is a chunk's or dangling cluster's placed order plus its low
// endpoint, for the Lemma 4.1 concatenation. Chunks carry their placed order
// (write < 0); a dangling cluster is reconstructed from its write.
type element struct {
	low   int64
	write int
	order []int
}

// candidate is one Stage 2 write order: an optional prepended backward
// write, the forward writes, and an optional appended backward write.
// Representing it this way avoids materializing the concatenation.
type candidate struct {
	pre, post int // write index, or -1 for none
	mid       []int
}

func (c candidate) len() int {
	n := len(c.mid)
	if c.pre >= 0 {
		n++
	}
	if c.post >= 0 {
		n++
	}
	return n
}

func (c candidate) at(i int) int {
	if c.pre >= 0 {
		if i == 0 {
			return c.pre
		}
		i--
	}
	if i < len(c.mid) {
		return c.mid[i]
	}
	return c.post
}

// Check decides 2-atomicity of the prepared history using FZF.
func Check(p *history.Prepared) Result {
	return CheckScratch(p, NewScratch())
}

// CheckScratch is Check reusing s's buffers across calls; at steady state it
// performs no allocations. The returned Witness aliases s and is valid only
// until the next call with the same Scratch.
func CheckScratch(p *history.Prepared, s *Scratch) Result {
	s.ensure(p)
	dec := zone.DecomposeScratch(p, &s.zone)
	res := Result{
		Chunks:      len(dec.Chunks),
		Dangling:    len(dec.Dangling),
		FailedChunk: -1,
	}

	s.elements = s.elements[:0]
	s.placed = s.placed[:0]
	for ci := range dec.Chunks {
		ch := dec.Chunks[ci]
		ord, tried, reason := s.checkChunk(p, ch)
		res.OrdersTried += tried
		if ord == nil {
			res.FailedChunk = ci
			res.Reason = reason
			return res
		}
		s.elements = append(s.elements, element{low: ch.Lo, write: -1, order: ord})
	}
	for _, w := range dec.Dangling {
		// A dangling cluster is backward: all its operations pairwise
		// overlap, so write-then-reads (in start order) is valid and
		// 1-atomic. The order is reconstructed during assembly.
		s.elements = append(s.elements, element{low: clusterLow(p, w), write: w})
	}
	res.Witness = assemble(p, s.elements, s.witness[:0])
	s.witness = res.Witness
	res.Atomic = true
	return res
}

// assemble performs the Lemma 4.1 concatenation: elements (per-chunk placed
// orders and dangling clusters) are stably sorted by their zone low endpoint
// and concatenated into buf. Any total order extending ≤_H works; sorting by
// low endpoint does (X.h < Y.l implies X.l < Y.l).
func assemble(p *history.Prepared, elements []element, buf []int) []int {
	slices.SortStableFunc(elements, func(a, b element) int {
		switch {
		case a.low < b.low:
			return -1
		case a.low > b.low:
			return 1
		}
		return 0
	})
	for _, e := range elements {
		if e.write >= 0 {
			buf = append(buf, e.write)
			buf = append(buf, p.DictatedReads[e.write]...)
		} else {
			buf = append(buf, e.order...)
		}
	}
	return buf
}

// CheckChunk runs Stage 2 on a single chunk in isolation: it returns the
// placed 2-atomic total order over the chunk's operations for the first
// viable candidate write order, or ord == nil with a reason when the chunk is
// not 2-atomic. The chunk-parallel scheduler calls this with one Scratch per
// worker; verdicts are position-independent, so per-chunk results combine
// into exactly the sequential CheckScratch outcome (first failing chunk, or
// Assemble of all orders). The returned order aliases s and is valid only
// until the next call with the same Scratch.
func CheckChunk(p *history.Prepared, ch zone.Chunk, s *Scratch) (ord []int, tried int, reason string) {
	s.ensure(p)
	s.placed = s.placed[:0]
	return s.checkChunk(p, ch)
}

// Assemble builds the Lemma 4.1 witness for a fully verified decomposition:
// orders[i] is the placed order CheckChunk produced for dec.Chunks[i], and
// dangling clusters are reconstructed as write-then-reads. The result is
// appended into buf and is identical to the Witness CheckScratch returns on
// the same history.
func Assemble(p *history.Prepared, dec zone.Decomposition, orders [][]int, buf []int) []int {
	elements := make([]element, 0, len(dec.Chunks)+len(dec.Dangling))
	for i, ch := range dec.Chunks {
		elements = append(elements, element{low: ch.Lo, write: -1, order: orders[i]})
	}
	for _, w := range dec.Dangling {
		elements = append(elements, element{low: clusterLow(p, w), write: w})
	}
	return assemble(p, elements, buf)
}

// AppendChunkOps appends the operation indices of chunk ch (its forward and
// backward clusters' writes and dictated reads) in start order into buf. The
// chunk-parallel scheduler uses it to hash a chunk's content for the verdict
// memo and to translate memoized chunk-relative orders back to operation
// indices.
func AppendChunkOps(p *history.Prepared, ch zone.Chunk, buf []int) []int {
	start := len(buf)
	for _, w := range ch.Forward {
		buf = append(buf, w)
		buf = append(buf, p.DictatedReads[w]...)
	}
	for _, w := range ch.Backward {
		buf = append(buf, w)
		buf = append(buf, p.DictatedReads[w]...)
	}
	slices.Sort(buf[start:])
	return buf
}

// clusterLow returns the zone low endpoint of write w's cluster.
func clusterLow(p *history.Prepared, w int) int64 {
	op := p.Op(w)
	minFinish, maxStart := op.Finish, op.Start
	for _, r := range p.DictatedReads[w] {
		rop := p.Op(r)
		if rop.Finish < minFinish {
			minFinish = rop.Finish
		}
		if rop.Start > maxStart {
			maxStart = rop.Start
		}
	}
	if minFinish < maxStart {
		return minFinish
	}
	return maxStart
}

// checkChunk runs Stage 2 for one chunk: it builds the candidate orders and
// returns the placed total order over the chunk's operations for the first
// viable candidate, or nil with a reason if none is viable. The returned
// order points into s.placed.
func (s *Scratch) checkChunk(p *history.Prepared, ch zone.Chunk) (ord []int, tried int, reason string) {
	tf := ch.Forward
	tfPrime := tf
	if len(tf) >= 2 {
		s.tfPrime = append(s.tfPrime[:0], tf...)
		s.tfPrime[0], s.tfPrime[1] = s.tfPrime[1], s.tfPrime[0]
		tfPrime = s.tfPrime
	}

	var cands [4]candidate
	nc := 0
	switch b := len(ch.Backward); {
	case b == 0:
		cands[nc] = candidate{-1, -1, tf}
		nc++
		if len(tf) >= 2 {
			cands[nc] = candidate{-1, -1, tfPrime}
			nc++
		}
	case b == 1:
		w := ch.Backward[0]
		cands[0] = candidate{w, -1, tf}
		cands[1] = candidate{-1, w, tf}
		nc = 2
		if len(tf) >= 2 {
			cands[2] = candidate{w, -1, tfPrime}
			cands[3] = candidate{-1, w, tfPrime}
			nc = 4
		}
	case b == 2:
		w1, w2 := ch.Backward[0], ch.Backward[1]
		cands[0] = candidate{w1, w2, tf}
		cands[1] = candidate{w2, w1, tf}
		nc = 2
		if len(tf) >= 2 {
			cands[2] = candidate{w1, w2, tfPrime}
			cands[3] = candidate{w2, w1, tfPrime}
			nc = 4
		}
	default:
		// B >= 3: not 2-atomic (Lemma 4.3, Case 4).
		return nil, 0, fmt.Sprintf("chunk has %d backward clusters (three or more is fatal)", b)
	}

	s.chunkOps(p, ch)
	for i, op := range s.ops {
		s.pos[op] = i
	}
	for i := 0; i < nc; i++ {
		tried++
		if placed := s.viable(p, cands[i]); placed != nil {
			ord = placed
			break
		}
	}
	// Restore the dense index's all-(-1) invariant for the next chunk.
	for _, op := range s.ops {
		s.pos[op] = -1
	}
	if ord == nil {
		return nil, tried, "no candidate write order is viable"
	}
	return ord, tried, ""
}

// chunkOps collects the operation indices of H|K in start order into s.ops.
// Prepared histories are index-sorted by start time, so sorting indices
// suffices.
func (s *Scratch) chunkOps(p *history.Prepared, ch zone.Chunk) {
	s.ops = AppendChunkOps(p, ch, s.ops[:0])
}

// viable implements the simplified LBT subroutine of Theorem 4.6: given a
// candidate total order c over all dictating writes of the chunk (the
// chunk's operations, in start order, are in s.ops with s.pos holding their
// positions), it attempts to extend c to a valid 2-atomic total order over
// all the operations, processing writes in reverse order without
// backtracking. It returns the full placed order (into s.placed) on success
// and nil otherwise.
//
// For the write at position j (1-based from the front), every not-yet-placed
// operation starting after that write finishes must be a read dictated by
// c.at(j) or by its predecessor c.at(j-1) — anything else would be separated
// from its dictating write by two or more writes (or violate validity).
func (s *Scratch) viable(p *history.Prepared, c candidate) []int {
	nw := c.len()
	// Validity pre-check: for i < j, c.at(j) must not precede c.at(i) in time.
	var maxStart int64
	for j := 0; j < nw; j++ {
		w := c.at(j)
		if j > 0 && p.Op(w).Finish < maxStart {
			return nil
		}
		if st := p.Op(w).Start; j == 0 || st > maxStart {
			maxStart = st
		}
	}

	n := len(s.ops)
	if len(s.removed) < n {
		s.removed = make([]bool, n)
	}
	removed := s.removed[:n]
	clear(removed)
	tail := n - 1 // highest not-yet-removed position

	if len(s.slotLo) < nw {
		s.slotLo = make([]int, nw)
		s.slotHi = make([]int, nw)
	}
	s.containers = s.containers[:0]
	for j := nw - 1; j >= 0; j-- {
		w := c.at(j)
		prevW := -1
		if j > 0 {
			prevW = c.at(j - 1)
		}
		wFinish := p.Op(w).Finish
		cStart := len(s.containers)
		// Forced suffix: ops starting after w finishes.
		for tail >= 0 {
			for tail >= 0 && removed[tail] {
				tail--
			}
			if tail < 0 {
				break
			}
			op := s.ops[tail]
			if p.Op(op).Start <= wFinish {
				break
			}
			if p.Op(op).IsWrite() {
				return nil // a write forced after w: invalid order
			}
			d := p.DictatingWrite[op]
			if d != w && d != prevW {
				return nil // separation >= 2 for this read
			}
			s.containers = append(s.containers, op)
			removed[tail] = true
			tail--
		}
		// Remaining dictated reads of w.
		for _, r := range p.DictatedReads[w] {
			pos := s.pos[r]
			if pos < 0 || removed[pos] {
				continue
			}
			s.containers = append(s.containers, r)
			removed[pos] = true
		}
		// Place w itself.
		wpos := s.pos[w]
		if wpos < 0 || removed[wpos] {
			return nil // duplicate write in c or w outside chunk
		}
		removed[wpos] = true
		s.slotLo[j], s.slotHi[j] = cStart, len(s.containers)
	}
	// Everything must be placed: every read's dictating write is in c.
	for i := 0; i < n; i++ {
		if !removed[i] {
			return nil
		}
	}
	// Assemble front-to-back order; container reads sorted by start
	// (index order == start order in prepared histories).
	start := len(s.placed)
	for j := 0; j < nw; j++ {
		s.placed = append(s.placed, c.at(j))
		reads := s.containers[s.slotLo[j]:s.slotHi[j]]
		slices.Sort(reads)
		s.placed = append(s.placed, reads...)
	}
	return s.placed[start:]
}

// viable is the direct-call form used by tests: it checks a bare write order
// t against an explicit chunk op set and returns the placed order, or nil.
func viable(p *history.Prepared, t []int, ops []int) []int {
	s := NewScratch()
	s.ensure(p)
	s.ops = append(s.ops, ops...)
	for i, op := range s.ops {
		s.pos[op] = i
	}
	return s.viable(p, candidate{pre: -1, post: -1, mid: t})
}

// SelfCheck verifies a positive result's witness independently.
func SelfCheck(p *history.Prepared, r Result) error {
	if !r.Atomic {
		return nil
	}
	return witness.Validate(p, r.Witness, 2)
}
