// Package fzf implements the FZF (Forward Zones First) 2-atomicity
// verification algorithm of Section IV (Figure 4) of the paper, which runs
// in O(n log n) even in the worst case (Theorem 4.6).
//
// Stage 1 decomposes the history into the maximal chunks of its chunk set
// CS(H) plus dangling backward clusters (package zone). Stage 2 decides
// 2-atomicity of each chunk independently by testing a constant number of
// candidate total orders over the chunk's dictating writes: T_F (forward
// writes by increasing zone low endpoint), T'_F (T_F with the first two
// writes swapped), and — for chunks with one or two backward clusters — the
// backward writes prepended/appended around them (Lemmas 4.2 and 4.3 prove
// these are the only possible viable orders; three or more backward clusters
// are immediately fatal). Each candidate order is checked for viability with
// a simplified, backtracking-free LBT pass. Stage 3 declares the history
// 2-atomic iff every chunk passed (Lemma 4.1).
package fzf

import (
	"fmt"
	"sort"

	"kat/internal/history"
	"kat/internal/witness"
	"kat/internal/zone"
)

// Result reports the decision and diagnostics.
type Result struct {
	// Atomic is true iff the history is 2-atomic.
	Atomic bool
	// Witness is a valid 2-atomic total order (operation indices) when
	// Atomic is true, assembled per Lemma 4.1 from per-chunk orders and
	// dangling clusters.
	Witness []int
	// Chunks is the number of maximal chunks examined.
	Chunks int
	// Dangling is the number of dangling (backward) clusters.
	Dangling int
	// OrdersTried counts candidate total orders tested for viability.
	OrdersTried int
	// FailedChunk is the index of the chunk that failed (when !Atomic and
	// the failure was per-chunk), else -1.
	FailedChunk int
	// Reason describes the failure (diagnostics; empty on success).
	Reason string
}

// Check decides 2-atomicity of the prepared history using FZF.
func Check(p *history.Prepared) Result {
	dec := zone.Decompose(p)
	res := Result{
		Chunks:      len(dec.Chunks),
		Dangling:    len(dec.Dangling),
		FailedChunk: -1,
	}

	// element is a chunk's or dangling cluster's placed order plus its
	// low endpoint, for the Lemma 4.1 concatenation.
	type element struct {
		low   int64
		order []int
	}
	elements := make([]element, 0, len(dec.Chunks)+len(dec.Dangling))

	for ci, ch := range dec.Chunks {
		ord, tried, reason := checkChunk(p, ch)
		res.OrdersTried += tried
		if ord == nil {
			res.FailedChunk = ci
			res.Reason = reason
			return res
		}
		elements = append(elements, element{low: ch.Lo, order: ord})
	}
	for _, w := range dec.Dangling {
		// A dangling cluster is backward: all its operations pairwise
		// overlap, so write-then-reads (in start order) is valid and
		// 1-atomic.
		ord := append([]int{w}, p.DictatedReads[w]...)
		low := clusterLow(p, w)
		elements = append(elements, element{low: low, order: ord})
	}
	// Any total order extending ≤_H works; sorting by low endpoint does
	// (X.h < Y.l implies X.l < Y.l).
	sort.SliceStable(elements, func(i, j int) bool { return elements[i].low < elements[j].low })
	for _, e := range elements {
		res.Witness = append(res.Witness, e.order...)
	}
	res.Atomic = true
	return res
}

// clusterLow returns the zone low endpoint of write w's cluster.
func clusterLow(p *history.Prepared, w int) int64 {
	op := p.Op(w)
	minFinish, maxStart := op.Finish, op.Start
	for _, r := range p.DictatedReads[w] {
		rop := p.Op(r)
		if rop.Finish < minFinish {
			minFinish = rop.Finish
		}
		if rop.Start > maxStart {
			maxStart = rop.Start
		}
	}
	if minFinish < maxStart {
		return minFinish
	}
	return maxStart
}

// checkChunk runs Stage 2 for one chunk: it builds the candidate orders and
// returns the placed total order over the chunk's operations for the first
// viable candidate, or nil with a reason if none is viable.
func checkChunk(p *history.Prepared, ch zone.Chunk) (ord []int, tried int, reason string) {
	tf := ch.Forward
	tfPrime := tf
	if len(tf) >= 2 {
		tfPrime = append([]int(nil), tf...)
		tfPrime[0], tfPrime[1] = tfPrime[1], tfPrime[0]
	}

	var candidates [][]int
	appendOrder := func(pre []int, mid []int, post []int) {
		c := make([]int, 0, len(pre)+len(mid)+len(post))
		c = append(c, pre...)
		c = append(c, mid...)
		c = append(c, post...)
		candidates = append(candidates, c)
	}
	switch b := len(ch.Backward); {
	case b == 0:
		appendOrder(nil, tf, nil)
		if len(tf) >= 2 {
			appendOrder(nil, tfPrime, nil)
		}
	case b == 1:
		w := ch.Backward[0]
		appendOrder([]int{w}, tf, nil)
		appendOrder(nil, tf, []int{w})
		if len(tf) >= 2 {
			appendOrder([]int{w}, tfPrime, nil)
			appendOrder(nil, tfPrime, []int{w})
		}
	case b == 2:
		w1, w2 := ch.Backward[0], ch.Backward[1]
		appendOrder([]int{w1}, tf, []int{w2})
		appendOrder([]int{w2}, tf, []int{w1})
		if len(tf) >= 2 {
			appendOrder([]int{w1}, tfPrime, []int{w2})
			appendOrder([]int{w2}, tfPrime, []int{w1})
		}
	default:
		// B >= 3: not 2-atomic (Lemma 4.3, Case 4).
		return nil, 0, fmt.Sprintf("chunk has %d backward clusters (three or more is fatal)", b)
	}

	ops := chunkOps(p, ch)
	for _, t := range candidates {
		tried++
		if placed := viable(p, t, ops); placed != nil {
			return placed, tried, ""
		}
	}
	return nil, tried, "no candidate write order is viable"
}

// chunkOps collects the operation indices of H|K in start order. Prepared
// histories are index-sorted by start time, so sorting indices suffices.
func chunkOps(p *history.Prepared, ch zone.Chunk) []int {
	var ops []int
	for _, w := range ch.Forward {
		ops = append(ops, w)
		ops = append(ops, p.DictatedReads[w]...)
	}
	for _, w := range ch.Backward {
		ops = append(ops, w)
		ops = append(ops, p.DictatedReads[w]...)
	}
	sort.Ints(ops)
	return ops
}

// viable implements the simplified LBT subroutine of Theorem 4.6: given a
// candidate total order t over all dictating writes of the chunk and the
// chunk's operations in start order, it attempts to extend t to a valid
// 2-atomic total order over all the operations, processing writes in reverse
// order of t without backtracking. It returns the full placed order on
// success and nil otherwise.
//
// For the write at position j (1-based from the front), every not-yet-placed
// operation starting after that write finishes must be a read dictated by
// t[j] or by its predecessor t[j-1] — anything else would be separated from
// its dictating write by two or more writes (or violate validity).
func viable(p *history.Prepared, t []int, ops []int) []int {
	// Validity pre-check: for i < j, t[j] must not precede t[i] in time.
	var maxStart int64
	for j, w := range t {
		if j > 0 && p.Op(w).Finish < maxStart {
			return nil
		}
		if s := p.Op(w).Start; j == 0 || s > maxStart {
			maxStart = s
		}
	}

	n := len(ops)
	posOf := make(map[int]int, n) // op index -> position in ops
	for i, op := range ops {
		posOf[op] = i
	}
	removed := make([]bool, n)
	tail := n - 1 // highest not-yet-removed position

	slots := make([][]int, len(t)) // slots[j] = container reads after t[j]
	for j := len(t) - 1; j >= 0; j-- {
		w := t[j]
		var prevW int = -1
		if j > 0 {
			prevW = t[j-1]
		}
		wFinish := p.Op(w).Finish
		var container []int
		// Forced suffix: ops starting after w finishes.
		for tail >= 0 {
			for tail >= 0 && removed[tail] {
				tail--
			}
			if tail < 0 {
				break
			}
			op := ops[tail]
			if p.Op(op).Start <= wFinish {
				break
			}
			if p.Op(op).IsWrite() {
				return nil // a write forced after w: invalid order
			}
			d := p.DictatingWrite[op]
			if d != w && d != prevW {
				return nil // separation >= 2 for this read
			}
			container = append(container, op)
			removed[tail] = true
			tail--
		}
		// Remaining dictated reads of w.
		for _, r := range p.DictatedReads[w] {
			pos, ok := posOf[r]
			if !ok || removed[pos] {
				continue
			}
			container = append(container, r)
			removed[pos] = true
		}
		// Place w itself.
		wpos, ok := posOf[w]
		if !ok || removed[wpos] {
			return nil // duplicate write in t or w outside chunk
		}
		removed[wpos] = true
		slots[j] = container
	}
	// Everything must be placed: every read's dictating write is in t.
	for i := 0; i < n; i++ {
		if !removed[i] {
			return nil
		}
	}
	// Assemble front-to-back order; container reads sorted by start.
	order := make([]int, 0, n)
	for j := 0; j < len(t); j++ {
		order = append(order, t[j])
		c := append([]int(nil), slots[j]...)
		sort.Ints(c) // index order == start order in prepared histories
		order = append(order, c...)
	}
	return order
}

// SelfCheck verifies a positive result's witness independently.
func SelfCheck(p *history.Prepared, r Result) error {
	if !r.Atomic {
		return nil
	}
	return witness.Validate(p, r.Witness, 2)
}
