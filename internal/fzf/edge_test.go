package fzf

import (
	"fmt"
	"testing"

	"kat/internal/oracle"
)

// edge cases around chunk geometry and the Stage 2 candidate orders.

func TestAllBackwardClusters(t *testing.T) {
	// Every cluster backward (all ops share a common instant): no chunks,
	// everything dangling, trivially 2-atomic (1-atomic even).
	p := prep(t, "w 1 0 100; r 1 5 95; w 2 1 99; r 2 6 94; w 3 2 98")
	res := check(t, p)
	if !res.Atomic {
		t.Fatalf("all-backward history rejected: %+v", res)
	}
	if res.Chunks != 0 || res.Dangling != 3 {
		t.Errorf("Chunks=%d Dangling=%d, want 0/3", res.Chunks, res.Dangling)
	}
}

func TestSingleForwardSingleBackwardPrepend(t *testing.T) {
	// Backward write overlapping the forward cluster's write: must be
	// prepended (it can't follow, because the forward read precedes
	// nothing after it...). Exercise the wT_F order.
	p := prep(t, "w 1 0 10; r 1 30 40; w 2 2 25")
	res := check(t, p)
	if !res.Atomic {
		t.Fatalf("prependable backward cluster rejected: %+v", res)
	}
}

func TestSingleForwardSingleBackwardAppend(t *testing.T) {
	// Backward write that must FOLLOW the forward writes: starts after the
	// forward write ends and overlaps its read. Exercise the T_Fw order.
	p := prep(t, "w 1 0 10; r 1 30 40; w 2 15 38")
	res := check(t, p)
	if !res.Atomic {
		t.Fatalf("appendable backward cluster rejected: %+v", res)
	}
}

func TestBackwardWithReadsInsideChunk(t *testing.T) {
	// Backward cluster WITH dictated reads nested in a chunk.
	p := prep(t, `
w 1 0 10
r 1 60 70
w 2 20 50
r 2 25 55
`)
	// zones: c1 forward [10,60]; c2 backward [25,50] nested.
	res := check(t, p)
	if !res.Atomic {
		t.Fatalf("backward cluster with reads rejected: %+v", res)
	}
}

func TestOrderMattersForBTwo(t *testing.T) {
	// Two backward clusters where only one side assignment works:
	// w2 must precede the forward write (its read finishes early),
	// w3 must follow it. Exercises w1TFw2 vs w2TFw1 selection.
	p := prep(t, `
w 9 5 15
r 9 40 50
w 2 0 12
r 2 1 13
w 3 20 45
r 3 22 46
`)
	want, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := Check(p)
	if got.Atomic != want.Atomic {
		t.Fatalf("FZF=%v oracle=%v", got.Atomic, want.Atomic)
	}
	if got.Atomic {
		if err := SelfCheck(p, got); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLongForwardChainBothShapes(t *testing.T) {
	// Build a long alternating chain of forward zones (the two chain
	// shapes of Figure 3's middle and right chunks) and verify against
	// the oracle.
	var text string
	tm := int64(0)
	for i := 0; i < 8; i++ {
		v1, v2 := 2*i+1, 2*i+2
		// Two overlapping clusters per block.
		text += fmt.Sprintf("w %d %d %d; ", v1, tm, tm+10)
		text += fmt.Sprintf("w %d %d %d; ", v2, tm+15, tm+25)
		text += fmt.Sprintf("r %d %d %d; ", v1, tm+30, tm+40)
		text += fmt.Sprintf("r %d %d %d; ", v2, tm+45, tm+55)
		tm += 60
	}
	p := prep(t, text)
	want, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := check(t, p)
	if got.Atomic != want.Atomic {
		t.Fatalf("FZF=%v oracle=%v", got.Atomic, want.Atomic)
	}
}

func TestViableRejectsInvalidWriteOrder(t *testing.T) {
	// Directly exercise the viability pre-check: a candidate order where a
	// later write precedes an earlier one in time must be rejected.
	p := prep(t, "w 1 0 10; r 1 30 40; w 2 50 60; r 2 70 80")
	ops := []int{0, 1, 2, 3}
	w1, _ := p.WriteFor(1)
	w2, _ := p.WriteFor(2)
	if got := viable(p, []int{w2, w1}, ops); got != nil {
		t.Error("time-inverted write order accepted as viable")
	}
}

func TestViableAcceptsAndPlacesAll(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 30 40; w 2 50 60; r 2 70 80")
	ops := []int{0, 1, 2, 3}
	w1, _ := p.WriteFor(1)
	w2, _ := p.WriteFor(2)
	got := viable(p, []int{w1, w2}, ops)
	if got == nil {
		t.Fatal("valid order rejected")
	}
	if len(got) != 4 {
		t.Fatalf("placed order = %v, want all 4 ops", got)
	}
}

func TestManySmallChunks(t *testing.T) {
	// 50 disjoint forward clusters: 50 chunks, all trivially viable.
	var text string
	for i := 0; i < 50; i++ {
		base := int64(i) * 100
		text += fmt.Sprintf("w %d %d %d; r %d %d %d; ",
			i+1, base, base+10, i+1, base+20, base+30)
	}
	p := prep(t, text)
	res := check(t, p)
	if !res.Atomic || res.Chunks != 50 {
		t.Fatalf("Atomic=%v Chunks=%d, want true/50", res.Atomic, res.Chunks)
	}
}
