package fzf

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
)

// TestCheckScratchZeroAlloc pins the tentpole property: once the Scratch has
// grown to the history's size, a full FZF check (Stage 1 decomposition,
// Stage 2 candidate orders, witness assembly) allocates nothing.
func TestCheckScratchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *history.History
	}{
		{"adversarial-c64", generator.Adversarial(generator.Config{Seed: 11, Ops: 4000, Concurrency: 64})},
		{"katomic-depth1", generator.KAtomic(generator.Config{Seed: 42, Ops: 4000, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := history.Prepare(tc.h)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			s := NewScratch()
			if res := CheckScratch(p, s); !res.Atomic {
				t.Fatal("warm-up check rejected an atomic history")
			}
			allocs := testing.AllocsPerRun(20, func() {
				if res := CheckScratch(p, s); !res.Atomic {
					t.Fatal("rejected")
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state CheckScratch: %v allocs/op, want 0", allocs)
			}
		})
	}
}

// TestCheckScratchReuseMatchesFresh cross-checks a reused arena against
// fresh one-shot checks on histories of both verdicts.
func TestCheckScratchReuseMatchesFresh(t *testing.T) {
	s := NewScratch()
	for seed := int64(0); seed < 30; seed++ {
		h := generator.Random(generator.Config{Seed: seed, Ops: 120, Concurrency: 4, ReadFraction: 0.6})
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			t.Fatalf("seed %d: Prepare: %v", seed, err)
		}
		fresh := Check(p)
		reused := CheckScratch(p, s)
		if fresh.Atomic != reused.Atomic || fresh.Chunks != reused.Chunks ||
			fresh.Dangling != reused.Dangling || fresh.OrdersTried != reused.OrdersTried {
			t.Errorf("seed %d: fresh %+v != reused %+v", seed, fresh, reused)
		}
		if err := SelfCheck(p, reused); err != nil {
			t.Errorf("seed %d: reused witness invalid: %v", seed, err)
		}
	}
}
