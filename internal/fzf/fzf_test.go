package fzf

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/witness"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func check(t *testing.T, p *history.Prepared) Result {
	t.Helper()
	res := Check(p)
	if err := SelfCheck(p, res); err != nil {
		t.Fatalf("FZF witness invalid: %v", err)
	}
	return res
}

func TestEmptyHistory(t *testing.T) {
	p, err := history.Prepare(history.New(nil))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if res := check(t, p); !res.Atomic {
		t.Error("empty history rejected")
	}
}

func TestSingleBackwardCluster(t *testing.T) {
	// Write with overlapping read: one dangling backward cluster, no chunks.
	p := prep(t, "w 1 0 20; r 1 5 30")
	res := check(t, p)
	if !res.Atomic {
		t.Error("single backward cluster rejected")
	}
	if res.Chunks != 0 || res.Dangling != 1 {
		t.Errorf("Chunks=%d Dangling=%d, want 0/1", res.Chunks, res.Dangling)
	}
}

func TestSequentialForwardClusters(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	res := check(t, p)
	if !res.Atomic {
		t.Error("sequential history rejected")
	}
	if res.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2 separate chunks", res.Chunks)
	}
}

func TestOneStaleReadAccepted(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	if res := check(t, p); !res.Atomic {
		t.Error("1-stale read rejected at k=2")
	}
}

func TestTwoStaleReadRejected(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70")
	res := Check(p)
	if res.Atomic {
		t.Error("2-stale read accepted at k=2")
	}
	if res.Reason == "" {
		t.Error("failure carries no reason")
	}
}

func TestSwappedOrderNeeded(t *testing.T) {
	// T_F fails but T'_F succeeds: two overlapping forward zones where the
	// second write must be ordered first. Reads: r(2) then r(1) with both
	// writes early and concurrent.
	p := prep(t, "w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70")
	res := check(t, p)
	if !res.Atomic {
		t.Error("order requiring T'_F rejected")
	}
}

func TestThreeBackwardClustersFatal(t *testing.T) {
	// One forward cluster whose zone spans [f, s̄]; three backward
	// (unread-write) clusters nested inside it.
	p := prep(t, `
w 9 0 10
r 9 100 110
w 1 20 25
w 2 40 45
w 3 60 65
`)
	res := Check(p)
	if res.Atomic {
		t.Error("chunk with three backward clusters accepted")
	}
}

func TestTwoBackwardClustersPlacable(t *testing.T) {
	// Forward zone [10,100]; two nested unread writes: one can go before,
	// one after the forward write. 2-atomic: order w1 w9 w2 r9? r9 reads 9
	// with w2 intervening... wait: w1, w9, w2, r9 gives separation 2 for
	// r9... but order w1 w9 r9 w2 is invalid because w2 precedes r9 in
	// time (w2.f=45 < r9.s=100)? Then w2 must be before r9: separation 2.
	// Pre-pending both: w1 w2 w9 r9 — valid iff neither w1 nor w2 succeeds
	// w9... w9 starts at 0 and they overlap it? w9=[0,10]: w1=[20,25]
	// starts after w9 finishes → w9 < w1, so w1 cannot precede w9.
	// This chunk is NOT 2-atomic. Use overlapping backward writes instead.
	p := prep(t, `
w 9 0 10
r 9 100 110
w 1 5 25
w 2 8 45
`)
	// w1 and w2 overlap w9, so they can be placed before it:
	// w1 w2 w9 r9? separation(r9)=1 write? zero intervening → 1-atomic
	// even. But w1,w2 must not succeed w9: w1.s=5 < w9.f → concurrent ✓.
	res := check(t, p)
	if !res.Atomic {
		t.Errorf("placeable backward clusters rejected: %+v", res)
	}
}

func TestBackwardMustSplitSides(t *testing.T) {
	// Two backward clusters that BOTH must go after the forward writes →
	// not 2-atomic (Lemma 4.3 Case 3 shape).
	// Forward chunk: w1[0,10] r1[40,50] (zone [10,40]),
	// backward: w2[12,38] r2[14,39]... overlapping ops. w3[13,37] r3[15,36].
	// Both backward clusters nest inside [10,40]. Both writes succeed w1
	// (start > 10) so neither can precede w1; both must follow all forward
	// writes; then r1 is separated from w1 by two writes.
	p := prep(t, `
w 1 0 10
r 1 40 50
w 2 12 38
r 2 14 39
w 3 13 37
r 3 15 36
`)
	res := Check(p)
	if res.Atomic {
		t.Error("two backward clusters forced to the same side accepted")
	}
}

func TestChainOfForwardZones(t *testing.T) {
	// A chain of overlapping forward zones (the Figure 3 middle-chunk
	// shape) that is 2-atomic.
	p := prep(t, `
w 1 0 10
w 2 15 25
r 1 30 40
w 3 45 55
r 2 60 70
r 3 75 85
`)
	// zones: c1 = [10,30], c2 = [25,60], c3 = [55,75]: chain.
	res := check(t, p)
	if !res.Atomic {
		t.Errorf("forward chain rejected: %+v", res)
	}
	if res.Chunks != 1 {
		t.Errorf("Chunks = %d, want 1 merged chunk", res.Chunks)
	}
}

func TestPropertyPviaOracle(t *testing.T) {
	// Three forward zones overlapping at one point is fatal (property P in
	// Lemma 4.2): all three reads far out, writes early.
	p := prep(t, `
w 1 0 10
w 2 2 12
w 3 4 14
r 1 100 110
r 2 120 130
r 3 140 150
`)
	res := Check(p)
	want, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if res.Atomic != want.Atomic {
		t.Errorf("FZF=%v oracle=%v", res.Atomic, want.Atomic)
	}
	if res.Atomic {
		t.Error("three mutually-overlapping forward zones accepted")
	}
}

// TestAgainstOracleRandom differential-tests FZF against the exact oracle
// and LBT on random histories.
func TestAgainstOracleRandom(t *testing.T) {
	shapes := []generator.Config{
		{Ops: 20, Concurrency: 1},
		{Ops: 24, Concurrency: 3},
		{Ops: 30, Concurrency: 6, ReadFraction: 0.7},
		{Ops: 30, Concurrency: 10, ReadFraction: 0.3},
		{Ops: 16, Concurrency: 16, ReadFraction: 0.5},
	}
	for _, shape := range shapes {
		for seed := int64(0); seed < 60; seed++ {
			cfg := shape
			cfg.Seed = seed
			h := generator.Random(cfg)
			p, err := history.Prepare(h)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			want, err := oracle.CheckK(p, 2, oracle.Options{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			gotF := Check(p)
			gotL := lbt.Check(p, lbt.Options{})
			if gotF.Atomic != want.Atomic || gotL.Atomic != want.Atomic {
				t.Fatalf("shape %+v seed %d: FZF=%v LBT=%v oracle=%v history:\n%s",
					shape, seed, gotF.Atomic, gotL.Atomic, want.Atomic, p.H)
			}
			if gotF.Atomic {
				if err := witness.Validate(p, gotF.Witness, 2); err != nil {
					t.Fatalf("shape %+v seed %d: witness: %v", shape, seed, err)
				}
			}
		}
	}
}

// TestAgainstOracleGenerated checks FZF on generated 2-atomic histories and
// staleness-injected mutants.
func TestAgainstOracleGenerated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 50, Concurrency: 4, StalenessDepth: 1,
		})
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		res := check(t, p)
		if !res.Atomic {
			t.Fatalf("seed %d: generated 2-atomic history rejected: %+v", seed, res)
		}

		mut := generator.InjectStaleness(h, seed, 0.3, 3)
		pm, err := history.Prepare(mut)
		if err != nil {
			t.Fatalf("Prepare mutant: %v", err)
		}
		want, err := oracle.CheckK(pm, 2, oracle.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got := Check(pm)
		if got.Atomic != want.Atomic {
			t.Fatalf("seed %d mutant: FZF=%v oracle=%v history:\n%s",
				seed, got.Atomic, want.Atomic, pm.H)
		}
	}
}

func TestLargeAdversarialFast(t *testing.T) {
	h := generator.Adversarial(generator.Config{Seed: 2, Ops: 5000, Concurrency: 64})
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res := Check(p)
	if !res.Atomic {
		t.Fatal("adversarial 2-atomic history rejected")
	}
	if err := witness.Validate(p, res.Witness, 2); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

func TestDiagnosticsPopulated(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	res := check(t, p)
	if res.OrdersTried == 0 {
		t.Errorf("OrdersTried = 0: %+v", res)
	}
	if res.FailedChunk != -1 {
		t.Errorf("FailedChunk = %d on success", res.FailedChunk)
	}
}
