package cluster

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestSlotMatchesStdlibFNV pins the partition hash to hash/fnv's FNV-1a:
// kavgen -replay and the online server's tests both partition keys with
// fnv.New32a, and pre-routed clients must agree with the router exactly.
func TestSlotMatchesStdlibFNV(t *testing.T) {
	p, err := NewPartition(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a", "k0", "k17", "register-12345", "\x00\xff"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := int(h.Sum32() % 256)
		if got := p.SlotString(key); got != want {
			t.Fatalf("SlotString(%q) = %d, want %d", key, got, want)
		}
		if got := p.Slot([]byte(key)); got != want {
			t.Fatalf("Slot(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestOwnerOfSlotMatchesRanges checks, exhaustively over several cluster
// sizes, that the arithmetic slot→node inversion agrees with the declared
// contiguous ranges and that the ranges tile the slot space.
func TestOwnerOfSlotMatchesRanges(t *testing.T) {
	for nodes := 1; nodes <= 9; nodes++ {
		p, err := NewPartition(nodes, 256)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for n := 0; n < nodes; n++ {
			r := p.Range(n)
			if r.Lo != next {
				t.Fatalf("%d nodes: node %d range %v not contiguous (want lo %d)", nodes, n, r, next)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("%d nodes: node %d has empty range %v", nodes, n, r)
			}
			for s := r.Lo; s < r.Hi; s++ {
				if got := p.OwnerOfSlot(s); got != n {
					t.Fatalf("%d nodes: OwnerOfSlot(%d) = %d, want %d", nodes, s, got, n)
				}
			}
			next = r.Hi
		}
		if next != 256 {
			t.Fatalf("%d nodes: ranges cover [0,%d), want [0,256)", nodes, next)
		}
	}
}

// TestOwnerBalance: equal contiguous ranges keep nodes within one slot of
// each other.
func TestOwnerBalance(t *testing.T) {
	p, err := NewPartition(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 256, 0
	for n := 0; n < 3; n++ {
		r := p.Range(n)
		if w := r.Hi - r.Lo; w < min {
			min = w
		} else if w > max {
			max = w
		}
	}
	if max-min > 1 {
		t.Fatalf("slot ranges unbalanced: min %d, max %d", min, max)
	}
}

func TestNewPartitionErrors(t *testing.T) {
	if _, err := NewPartition(0, 256); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := NewPartition(10, 4); err == nil {
		t.Fatal("more nodes than slots accepted")
	}
	p, err := NewPartition(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != DefaultSlots {
		t.Fatalf("default slots = %d, want %d", p.Slots(), DefaultSlots)
	}
}

func TestSlotRangeString(t *testing.T) {
	if got := (SlotRange{Lo: 85, Hi: 170}).String(); got != "slots [85,170)" {
		t.Fatalf("SlotRange.String() = %q", got)
	}
}

// TestOwnerDeterministic: many keys route stably and land on every node of
// a small cluster (catching a degenerate hash or an off-by-one that
// funnels everything to one node).
func TestOwnerDeterministic(t *testing.T) {
	p, err := NewPartition(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	hit := map[int]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		n := p.OwnerString(key)
		if again := p.OwnerString(key); again != n {
			t.Fatalf("OwnerString(%q) unstable: %d then %d", key, n, again)
		}
		if n < 0 || n >= 3 {
			t.Fatalf("OwnerString(%q) = %d out of range", key, n)
		}
		hit[n]++
	}
	for n := 0; n < 3; n++ {
		if hit[n] == 0 {
			t.Fatalf("node %d received no keys out of 300: %v", n, hit)
		}
	}
}
