package cluster

import (
	"testing"
	"time"
)

// clockFor pins a breaker to a manual clock.
func clockFor(b *Breaker) *time.Time {
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	return &now
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Second)
	clockFor(b)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker gated after %d failures (threshold 3)", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b := NewBreaker(1, time.Second)
	now := clockFor(b)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	*now = now.Add(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the trial")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Trial fails: snap back open and re-arm the cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted immediately")
	}
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second trial refused after second cooldown")
	}
	// Trial succeeds: closed, traffic flows, failure count reset.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", b.State())
	}
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker gated traffic")
		}
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(3, time.Second)
	clockFor(b)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("third consecutive failure did not trip")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open", BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", state, got, want)
		}
	}
}
