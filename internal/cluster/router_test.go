package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kat"
	"kat/internal/chaosproxy"
	"kat/internal/history"
	"kat/internal/online"
	"kat/internal/trace"
	"kat/internal/wire"
)

func fastRouterRetries(t *testing.T) {
	t.Helper()
	base, max := routerRetryBase, routerRetryMax
	routerRetryBase, routerRetryMax = time.Millisecond, 5*time.Millisecond
	t.Cleanup(func() { routerRetryBase, routerRetryMax = base, max })
}

// testCluster is N online members behind httptest servers plus a router
// fronting them (probes not started; tests that need them call Start).
type testCluster struct {
	router   *Router
	rts      *httptest.Server
	members  []*online.Server
	backends []*httptest.Server
}

func newTestCluster(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler, cfg Config) *testCluster {
	return newTestClusterMembers(t, n, wrap, cfg, online.Config{K: 2})
}

// newTestClusterMembers is newTestCluster with an explicit member
// configuration (per-property sessions, horizons, ...).
func newTestClusterMembers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler, cfg Config, mcfg online.Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		srv := online.New(mcfg)
		h := http.Handler(srv.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		tc.members = append(tc.members, srv)
		tc.backends = append(tc.backends, ts)
		cfg.Nodes = append(cfg.Nodes, ts.URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.router = rt
	tc.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.rts.Close)
	return tc
}

// clusterTrace builds writes over `keys` keys, `opsPerKey` each,
// interleaved, and the per-key count map.
func clusterTrace(keys, opsPerKey int) (string, map[string]int) {
	var b strings.Builder
	want := map[string]int{}
	for i := 0; i < opsPerKey; i++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("k%d", k)
			fmt.Fprintf(&b, "w %s %d %d %d\n", key, i+1, 2*i, 2*i+1)
			want[key]++
		}
	}
	return b.String(), want
}

func postIngestText(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, payload
}

func getClusterVerdict(t *testing.T, url, path string, wantStatus int) ClusterVerdict {
	t.Helper()
	var resp *http.Response
	var err error
	if path == "/drain" {
		resp, err = http.Post(url+path, "", nil)
	} else {
		resp, err = http.Get(url + path)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: %s (want %d): %.300s", path, resp.Status, wantStatus, body)
	}
	var doc ClusterVerdict
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("%s: decoding: %v: %.300s", path, err, body)
	}
	return doc
}

// TestRouterSplitsByOwnerAndMergesVerdicts is the core routing invariant:
// a mixed-key batch splits so every key lands wholly on its partition
// owner, and the merged cluster verdict covers every key exactly once.
func TestRouterSplitsByOwnerAndMergesVerdicts(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 3, nil, Config{})
	text, want := clusterTrace(12, 10)
	resp, payload := postIngestText(t, tc.rts.URL, text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, payload)
	}
	if !strings.Contains(string(payload), `"ingested": 120`) {
		t.Fatalf("ingest ack = %s, want 120", payload)
	}

	doc := getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	if !doc.Cluster || !doc.Drained || doc.Partial {
		t.Fatalf("drain doc: cluster=%v drained=%v partial=%v", doc.Cluster, doc.Drained, doc.Partial)
	}
	if doc.K != 2 {
		t.Fatalf("merged K = %d, want 2", doc.K)
	}
	got := map[string]int{}
	for _, ks := range doc.Keys {
		if _, dup := got[ks.Key]; dup {
			t.Fatalf("key %s appears twice in merged verdict", ks.Key)
		}
		got[ks.Key] = ks.Ops
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("key %s: %d ops, want %d (all: %v)", key, got[key], n, got)
		}
	}
	if doc.Stats.Ops != 120 {
		t.Fatalf("merged stats ops = %d, want 120", doc.Stats.Ops)
	}

	// Placement: every key sits wholly on its owner, nowhere else.
	for i, srv := range tc.members {
		for _, ks := range srv.Verdict().Keys {
			if owner := tc.router.Partition().OwnerString(ks.Key); owner != i {
				t.Fatalf("key %s on node %d, owner is %d", ks.Key, i, owner)
			}
			if ks.Ops != want[ks.Key] {
				t.Fatalf("key %s on node %d has %d ops, want %d", ks.Key, i, ks.Ops, want[ks.Key])
			}
		}
	}
}

// TestRouterWireCodecPreserved: a wire-encoded batch splits and forwards
// as wire frames (member wire-codec byte counters move, text stays 0).
func TestRouterWireCodecPreserved(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 2, nil, Config{})
	text, want := clusterTrace(6, 8)
	var ops []wire.Op
	if err := trace.ParseStreamBytes(strings.NewReader(text), func(key []byte, op history.Operation) error {
		ops = append(ops, wire.Op{Key: string(key), Op: op})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	body, err := wire.EncodeSelfContained(nil, ops, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.rts.URL+"/ingest", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wire ingest: %s: %s", resp.Status, payload)
	}
	doc := getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	got := map[string]int{}
	for _, ks := range doc.Keys {
		got[ks.Key] = ks.Ops
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("key %s: %d ops, want %d", key, got[key], n)
		}
	}
	// Codec preserved end to end: members saw wire bytes, not text.
	for i, ts := range tc.backends {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		exposition, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(exposition), `kavserve_ingest_bytes_total{codec="text"} 0`) == false {
			t.Fatalf("node %d ingested text bytes for a wire batch:\n%s", i, exposition)
		}
	}
}

// TestRouterDegradedIngest: with one member down, healthy slices keep
// ingesting and the reject is typed "degraded" naming the dead slice, with
// Ingested counting cross-node accepted ops (not a prefix).
func TestRouterDegradedIngest(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 3, nil, Config{ForwardRetries: 1, BreakerThreshold: 2, HopTimeout: 2 * time.Second})
	tc.backends[1].Close() // node 1 is gone

	text, want := clusterTrace(12, 5)
	resp, payload := postIngestText(t, tc.rts.URL, text)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: %s (want 503): %s", resp.Status, payload)
	}
	var reject DegradedReject
	if err := json.Unmarshal(payload, &reject); err != nil {
		t.Fatalf("decoding reject: %v: %s", err, payload)
	}
	if reject.Code != "degraded" {
		t.Fatalf("reject code = %q, want degraded", reject.Code)
	}
	if len(reject.Unreachable) != 1 || !strings.Contains(reject.Unreachable[0], "node 1") {
		t.Fatalf("unreachable = %v, want node 1's slice", reject.Unreachable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded reject without Retry-After")
	}

	// Healthy nodes hold exactly their slices' ops; the dead node's keys
	// account for the shortfall reported in Ingested.
	part := tc.router.Partition()
	var healthyOps int64
	for key, n := range want {
		if part.OwnerString(key) != 1 {
			healthyOps += int64(n)
		}
	}
	if reject.Ingested != healthyOps {
		t.Fatalf("reject.Ingested = %d, want %d (healthy slices only)", reject.Ingested, healthyOps)
	}

	// The partial verdict is typed: 206, Partial, dead slice named, and
	// only healthy keys present.
	doc := getClusterVerdict(t, tc.rts.URL, "/verdict", http.StatusPartialContent)
	if !doc.Partial || len(doc.Unreachable) != 1 {
		t.Fatalf("partial=%v unreachable=%v, want partial with one slice", doc.Partial, doc.Unreachable)
	}
	for _, ks := range doc.Keys {
		if part.OwnerString(ks.Key) == 1 {
			t.Fatalf("dead node's key %s present in partial verdict", ks.Key)
		}
	}
	var deadKey, liveKey string
	for key := range want {
		if part.OwnerString(key) == 1 {
			deadKey = key
		} else {
			liveKey = key
		}
	}
	// Per-key lookups: owner down → typed 503; healthy owner → proxied 200.
	resp2, err := http.Get(tc.rts.URL + "/verdict/" + deadKey)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body2), "degraded") {
		t.Fatalf("dead key lookup: %s: %s", resp2.Status, body2)
	}
	resp3, err := http.Get(tc.rts.URL + "/verdict/" + liveKey)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK || !strings.Contains(string(body3), `"key"`) {
		t.Fatalf("live key lookup: %s: %s", resp3.Status, body3)
	}
}

// TestRouterChaosForwardingIsExact drives batches through a router whose
// middle member sits behind a chaos proxy injecting every ambiguity class.
// The router's retry+reconcile machinery must absorb all of it: clients
// see clean 200s and per-key counts come out exact (nothing lost, nothing
// double-ingested).
func TestRouterChaosForwardingIsExact(t *testing.T) {
	fastRouterRetries(t)
	var proxy *chaosproxy.Proxy
	tc := newTestCluster(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		proxy = chaosproxy.New(h, chaosproxy.Faults{Shed503: 2, Reset: 2, Drop: 2, Torn: 2})
		return proxy
	}, Config{})

	text, want := clusterTrace(9, 8)
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	const batches = 6
	per := (len(lines) + batches - 1) / batches
	for off := 0; off < len(lines); off += per {
		end := min(off+per, len(lines))
		resp, payload := postIngestText(t, tc.rts.URL, strings.Join(lines[off:end], ""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch at %d: %s: %s", off, resp.Status, payload)
		}
	}
	if proxy.InjectedTotal() == 0 {
		t.Fatal("chaos proxy injected nothing; test proves nothing")
	}
	doc := getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	got := map[string]int{}
	for _, ks := range doc.Keys {
		got[ks.Key] = ks.Ops
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("key %s: %d ops, want exactly %d (chaos broke exactness; injected %d faults)",
				key, got[key], n, proxy.InjectedTotal())
		}
	}
	m := tc.router.members[1]
	if m.fwdRetries.Value() == 0 {
		t.Fatal("no forward retries recorded despite chaos")
	}
	if m.reconciles.Value() == 0 {
		t.Fatal("no reconciles recorded despite drop/torn faults")
	}
}

// TestRouterAmbiguousForwardInvalidatesBaseline reproduces the stale-acked
// hazard: a forward whose in-flight batch lands on the member but whose
// reconcile never resolves (the member's /verdict stays down until the
// retry budget is spent) must invalidate the router's acked baseline.
// Otherwise a later forward's reconcile computes its skip from counts that
// include the orphaned batch and silently trims the NEW batch's leading
// ops as "already applied", losing them.
func TestRouterAmbiguousForwardInvalidatesBaseline(t *testing.T) {
	fastRouterRetries(t)
	var mode atomic.Int32 // 0: normal; 1: ingest applies then dies + verdict 500s; 2: one pre-apply reset
	tc := newTestCluster(t, 1, func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch {
			case mode.Load() == 1 && r.URL.Path == "/ingest":
				// Apply the batch, then kill the connection: a transport
				// failure on operations that actually landed.
				h.ServeHTTP(httptest.NewRecorder(), r)
				if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
					conn.Close()
				}
			case mode.Load() == 1 && r.URL.Path == "/verdict":
				http.Error(w, "verdict down", http.StatusInternalServerError)
			case mode.Load() == 2 && r.URL.Path == "/ingest":
				// One connection reset before the member sees anything,
				// forcing the next forward through its reconcile path.
				mode.Store(0)
				if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
					conn.Close()
				}
			default:
				h.ServeHTTP(w, r)
			}
		})
	}, Config{ForwardRetries: 2, BreakerThreshold: 100})

	// Warm-up establishes a clean acked baseline.
	if resp, payload := postIngestText(t, tc.rts.URL, "w k 1 0 1\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up ingest: %s: %s", resp.Status, payload)
	}
	// B1 lands but every reconcile fails: the router gives up with the
	// batch's fate unresolved and must not trust its acked counts again
	// until it re-reads /verdict.
	mode.Store(1)
	if resp, payload := postIngestText(t, tc.rts.URL, "w k 2 2 3\nw k 3 4 5\n"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ambiguous give-up: %s (want 503): %s", resp.Status, payload)
	}
	// B2 hits one pre-apply reset, forcing a reconcile. A stale baseline
	// would attribute B1's two orphaned ops to B2 and drop B2 entirely; the
	// refreshed baseline must deliver B2 exactly.
	mode.Store(2)
	if resp, payload := postIngestText(t, tc.rts.URL, "w k 4 6 7\nw k 5 8 9\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest: %s: %s", resp.Status, payload)
	}
	doc := getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	if len(doc.Keys) != 1 || doc.Keys[0].Ops != 5 {
		t.Fatalf("drained keys = %+v, want k with exactly 5 ops (1 warm-up + 2 orphaned + 2 retried)", doc.Keys)
	}
}

// TestRouterStickyMemberRejectSurfacesCode: a typed sticky member reject
// (out_of_order here) must keep its code and status through the router —
// not be relabeled "degraded" with a Retry-After inviting useless retries.
func TestRouterStickyMemberRejectSurfacesCode(t *testing.T) {
	fastRouterRetries(t)
	// MinSegmentOps 1 commits a cut at every quiescent instant, making the
	// out-of-order arrival below detectable (mirrors TestIngestErrors).
	srv := online.New(online.Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	rt, err := NewRouter(Config{Nodes: []string{ts.URL}, ForwardRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	for _, line := range []string{"w k 1 10 11\n", "w k 2 30 31\n"} {
		if resp, payload := postIngestText(t, rts.URL, line); resp.StatusCode != http.StatusOK {
			t.Fatalf("in-order ingest: %s: %s", resp.Status, payload)
		}
	}
	// Start regresses behind a committed cut: the member answers 409
	// out_of_order, which is sticky — resending the same batch cannot help.
	resp, payload := postIngestText(t, rts.URL, "w k 3 5 6\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order ingest: %s (want 409): %s", resp.Status, payload)
	}
	var reject DegradedReject
	if err := json.Unmarshal(payload, &reject); err != nil {
		t.Fatalf("decoding reject: %v: %s", err, payload)
	}
	if reject.Code != "out_of_order" {
		t.Fatalf("reject code = %q, want out_of_order", reject.Code)
	}
	if len(reject.Slices) != 1 || reject.Slices[0].Code != "out_of_order" {
		t.Fatalf("slices = %+v, want one out_of_order slice", reject.Slices)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("sticky reject carried Retry-After")
	}
}

// TestRouterVerdictKeyEscaped: per-key lookups for keys containing URL
// reserved bytes must survive the router → member hop re-escaped.
func TestRouterVerdictKeyEscaped(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 2, nil, Config{})
	const key = "k%2?x"
	if resp, payload := postIngestText(t, tc.rts.URL, "w "+key+" 1 0 1\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, payload)
	}
	resp, err := http.Get(tc.rts.URL + "/verdict/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("escaped key lookup: %s: %s", resp.Status, body)
	}
	var status struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("decoding key status: %v: %s", err, body)
	}
	if status.Key != key {
		t.Fatalf("key status for %q, want %q: %s", status.Key, key, body)
	}
}

// TestRouterMetricsMergesMembers: /metrics serves the router's own
// families plus every member's exposition relabeled with node="...", with
// HELP headers deduplicated.
func TestRouterMetricsMergesMembers(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 2, nil, Config{})
	text, _ := clusterTrace(4, 3)
	resp, payload := postIngestText(t, tc.rts.URL, text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, payload)
	}
	mresp, err := http.Get(tc.rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text = string(body)
	for _, wantSub := range []string{
		"kavserve_router_nodes 2",
		"kavserve_router_ingest_requests_total 1",
		`kavserve_router_forward_ops_total{node="`,
		`kavserve_router_breaker_state{node="`,
		`kavserve_ingest_requests_total{node="`,
	} {
		if !strings.Contains(text, wantSub) {
			t.Fatalf("metrics missing %q:\n%.2000s", wantSub, text)
		}
	}
	if n := strings.Count(text, "# HELP kavserve_ingest_requests_total "); n != 1 {
		t.Fatalf("member HELP header appears %d times, want 1 (dedup broken)", n)
	}
}

// TestRouterDrainingMembersSurfaceTerminalCode: once every member is
// draining, further ingest through the router answers 409 "draining" so
// clients stop rather than burn retries on a terminal condition.
func TestRouterDrainingMembersSurfaceTerminalCode(t *testing.T) {
	fastRouterRetries(t)
	tc := newTestCluster(t, 2, nil, Config{ForwardRetries: 1})
	text, _ := clusterTrace(4, 2)
	if resp, payload := postIngestText(t, tc.rts.URL, text); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, payload)
	}
	getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	resp, payload := postIngestText(t, tc.rts.URL, text)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-drain ingest: %s (want 409): %s", resp.Status, payload)
	}
	var reject DegradedReject
	if err := json.Unmarshal(payload, &reject); err != nil {
		t.Fatal(err)
	}
	if reject.Code != "draining" {
		t.Fatalf("post-drain code = %q, want draining", reject.Code)
	}
}

// TestRouterMalformedBatchRejectsAtomically: a batch that fails to decode
// forwards nothing anywhere — Ingested is genuinely zero.
func TestRouterMalformedBatchRejectsAtomically(t *testing.T) {
	tc := newTestCluster(t, 2, nil, Config{})
	resp, payload := postIngestText(t, tc.rts.URL, "w k0 1 0 1\nthis is not a trace line\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %s: %s", resp.Status, payload)
	}
	var reject online.IngestReject
	if err := json.Unmarshal(payload, &reject); err != nil {
		t.Fatal(err)
	}
	if reject.Code != "malformed" || reject.Ingested != 0 {
		t.Fatalf("reject = %+v, want malformed/0", reject)
	}
	for i, srv := range tc.members {
		if err := srv.Drain(); err != nil {
			t.Fatal(err)
		}
		if keys := srv.Verdict().Keys; len(keys) != 0 {
			t.Fatalf("node %d ingested part of a malformed batch: %+v", i, keys)
		}
	}
}

// TestRouterHealthzReportsTopology: the router's own /healthz names every
// member, its slice, and its breaker state.
func TestRouterHealthzReportsTopology(t *testing.T) {
	tc := newTestCluster(t, 3, nil, Config{})
	resp, err := http.Get(tc.rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "router" || len(h.Nodes) != 3 {
		t.Fatalf("healthz = %+v", h)
	}
	for i, n := range h.Nodes {
		if n.Index != i || n.Breaker != "closed" || !strings.HasPrefix(n.Slots, "slots [") {
			t.Fatalf("node %d health = %+v", i, n)
		}
	}
}

// TestClusterPerPropertyVerdictMatchesSingleNode: a drained 3-node
// cluster's merged /verdict carries the same per-property verdicts
// (smallest k, smallest Δ, regularity/safety counts) as a single node fed
// the merged trace — the router's split/merge is invisible to every
// property, not just k.
func TestClusterPerPropertyVerdictMatchesSingleNode(t *testing.T) {
	fastRouterRetries(t)
	mcfg := online.Config{K: 2}
	mcfg.Stream = trace.StreamOptions{Workers: 2, MinSegmentOps: 1, Properties: trace.PropertySetAll}
	tc := newTestClusterMembers(t, 3, nil, Config{}, mcfg)

	tr := kat.NewTrace()
	for ki := 0; ki < 9; ki++ {
		gcfg := kat.GenConfig{Seed: int64(ki + 1), Ops: 60, Concurrency: 2, ReadFraction: 0.5}
		h := kat.GenerateKAtomic(gcfg)
		if ki%3 == 0 {
			h = kat.InjectStaleness(h, gcfg.Seed+100, 0.3, 2)
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%03d", ki), op)
		}
	}
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	resp, payload := postIngestText(t, tc.rts.URL, text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, payload)
	}
	doc := getClusterVerdict(t, tc.rts.URL, "/drain", http.StatusOK)
	if !doc.Drained || doc.Partial {
		t.Fatalf("drain doc: drained=%v partial=%v", doc.Drained, doc.Partial)
	}
	if doc.Properties != "k,delta,regularity" {
		t.Fatalf("merged properties = %q", doc.Properties)
	}

	single := online.New(mcfg)
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	sresp, err := http.Post(sts.URL+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if err := single.Drain(); err != nil {
		t.Fatal(err)
	}
	want := single.Verdict()

	if len(doc.Keys) != len(want.Keys) {
		t.Fatalf("merged %d keys, single node %d", len(doc.Keys), len(want.Keys))
	}
	for i, ks := range doc.Keys {
		ws := want.Keys[i]
		if ks.Key != ws.Key || ks.Ops != ws.Ops || ks.SmallestK != ws.SmallestK ||
			ks.Saturated != ws.Saturated || ks.Status != ws.Status || ks.Err != ws.Err {
			t.Fatalf("key %s: cluster %+v, single node %+v", ks.Key, ks, ws)
		}
		if (ks.Delta == nil) != (ws.Delta == nil) || (ks.Delta != nil && *ks.Delta != *ws.Delta) {
			t.Fatalf("key %s: cluster Δ %+v, single node %+v", ks.Key, ks.Delta, ws.Delta)
		}
		if (ks.Regularity == nil) != (ws.Regularity == nil) || (ks.Regularity != nil && *ks.Regularity != *ws.Regularity) {
			t.Fatalf("key %s: cluster regularity %+v, single node %+v", ks.Key, ks.Regularity, ws.Regularity)
		}
	}
	if doc.Stats.Ops != want.Stats.Ops {
		t.Fatalf("merged ops %d, single node %d", doc.Stats.Ops, want.Stats.Ops)
	}
}

// TestMergeDocsFoldsDuplicateKeys: duplicate entries for one key (a key
// re-ingested on a second node across separate runs) fold commutatively —
// max for the k/Δ lower bounds, disjunction for saturation, sums for
// counts, severity order for status.
func TestMergeDocsFoldsDuplicateKeys(t *testing.T) {
	a := online.VerdictDoc{K: 2, Drained: true, Properties: "k,delta,regularity", Keys: []online.KeyStatus{{
		Key: "x", Ops: 10, SmallestK: 1, Status: "ok",
		Delta:      &online.DeltaStatus{SmallestDelta: 3},
		Regularity: &online.RegularityStatus{Regular: true, Safe: true},
	}}}
	b := online.VerdictDoc{K: 2, Drained: true, Keys: []online.KeyStatus{
		{
			Key: "x", Ops: 7, SmallestK: 4, Saturated: true, Status: "violating",
			Violation:  &online.Violation{Seq: 2, K: 4},
			Delta:      &online.DeltaStatus{SmallestDelta: 9, Saturated: true},
			Regularity: &online.RegularityStatus{IrregularReads: 2, UnsafeReads: 1},
		},
		{Key: "y", Ops: 5, SmallestK: 1, Status: "ok"},
	}}
	for _, docs := range [][]online.VerdictDoc{{a, b}, {b, a}} {
		m := MergeDocs(docs)
		if m.Properties != "k,delta,regularity" {
			t.Fatalf("merged properties = %q", m.Properties)
		}
		if len(m.Keys) != 2 || m.Keys[0].Key != "x" || m.Keys[1].Key != "y" {
			t.Fatalf("merged keys: %+v", m.Keys)
		}
		x := m.Keys[0]
		if x.Ops != 17 || x.SmallestK != 4 || !x.Saturated || x.Status != "violating" {
			t.Fatalf("folded x: %+v", x)
		}
		if x.Violation == nil || x.Violation.Seq != 2 {
			t.Fatalf("folded x violation: %+v", x.Violation)
		}
		if x.Delta == nil || x.Delta.SmallestDelta != 9 || !x.Delta.Saturated {
			t.Fatalf("folded x Δ: %+v", x.Delta)
		}
		if x.Regularity == nil || x.Regularity.IrregularReads != 2 || x.Regularity.UnsafeReads != 1 ||
			x.Regularity.Regular || x.Regularity.Safe {
			t.Fatalf("folded x regularity: %+v", x.Regularity)
		}
	}
}

// TestMergeDocsLifecycle: the keyspace-lifecycle additions merge node-order
// independently — retired summaries sum counts and max floors, epoch
// windows fold by epoch number with members' folded aggregates collapsing
// into one, a duplicate key is only "retired" when every copy is, and the
// lifecycle stream counters sum.
func TestMergeDocsLifecycle(t *testing.T) {
	a := online.VerdictDoc{K: 2, Drained: true,
		Keys: []online.KeyStatus{
			{Key: "x", Ops: 4, SmallestK: 1, Status: "ok", Retired: true},
			{Key: "y", Ops: 2, SmallestK: 1, Status: "ok", Retired: true},
		},
		Stats:   trace.StreamStats{Ops: 6, RetiredKeys: 2, Retirements: 3, Readmissions: 1},
		Retired: &trace.RetiredSummary{Keys: 2, Ops: 6, Retirements: 3, Readmissions: 1, MaxK: 2, MaxDelta: 5, Errors: 1},
		Epochs: []trace.EpochStats{
			{Epoch: 3, Folded: true, Ops: 10, MaxK: 1},
			{Epoch: 5, Ops: 4, MaxK: 2, Violations: 1},
			{Epoch: 6, Ops: 2, MaxK: 1},
		},
	}
	b := online.VerdictDoc{K: 2, Drained: true,
		Keys: []online.KeyStatus{
			{Key: "x", Ops: 3, SmallestK: 2, Status: "ok"}, // live on this node
			{Key: "z", Ops: 1, SmallestK: 1, Status: "ok"},
		},
		Stats:   trace.StreamStats{Ops: 4, RetiredKeys: 1, Retirements: 1},
		Retired: &trace.RetiredSummary{Keys: 1, Ops: 1, Retirements: 1, MaxK: 3, UnsafeReads: 2},
		Epochs: []trace.EpochStats{
			{Epoch: 4, Folded: true, Ops: 7, MaxDelta: 9},
			{Epoch: 5, Ops: 3, MaxK: 1},
		},
	}
	for _, docs := range [][]online.VerdictDoc{{a, b}, {b, a}} {
		m := MergeDocs(docs)
		if len(m.Keys) != 3 {
			t.Fatalf("merged keys: %+v", m.Keys)
		}
		x, y := m.Keys[0], m.Keys[1]
		if x.Retired {
			t.Fatalf("key x retired on one node only, merged entry must be live: %+v", x)
		}
		if !y.Retired {
			t.Fatalf("key y retired everywhere it appears: %+v", y)
		}
		r := m.Retired
		if r == nil || r.Keys != 3 || r.Ops != 7 || r.Retirements != 4 || r.Readmissions != 1 {
			t.Fatalf("merged retired summary: %+v", r)
		}
		if r.MaxK != 3 || r.MaxDelta != 5 || r.UnsafeReads != 2 || r.Errors != 1 {
			t.Fatalf("merged retired floors: %+v", r)
		}
		// Epochs: one folded aggregate first (indices 3 and 4 collapse,
		// keeping the highest), then 5 (merged across nodes) and 6.
		if len(m.Epochs) != 3 {
			t.Fatalf("merged epochs: %+v", m.Epochs)
		}
		f := m.Epochs[0]
		if !f.Folded || f.Epoch != 4 || f.Ops != 17 || f.MaxK != 1 || f.MaxDelta != 9 {
			t.Fatalf("merged folded aggregate: %+v", f)
		}
		e5 := m.Epochs[1]
		if e5.Folded || e5.Epoch != 5 || e5.Ops != 7 || e5.MaxK != 2 || e5.Violations != 1 {
			t.Fatalf("merged epoch 5: %+v", e5)
		}
		if m.Epochs[2].Epoch != 6 || m.Epochs[2].Ops != 2 {
			t.Fatalf("merged epoch 6: %+v", m.Epochs[2])
		}
		st := m.Stats
		if st.Ops != 10 || st.RetiredKeys != 3 || st.Retirements != 4 || st.Readmissions != 1 {
			t.Fatalf("merged lifecycle stats: %+v", st)
		}
	}
}
