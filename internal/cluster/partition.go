// Package cluster implements kavserve's fault-tolerant cluster mode: a
// consistent-hash partition of the keyspace over N member nodes, a per-node
// circuit breaker, and a thin router that splits ingest batches by key
// owner, forwards them with retry/backoff, and merges verdicts.
//
// The paper's decomposition is per-key — a key's k-atomicity verdict
// depends only on that key's operations — so the keyspace partitions
// exactly: route every operation for a key to one node and the cluster's
// per-key verdicts are identical to a single node's on the merged trace.
// The router enforces exactly that invariant; everything else here is the
// machinery for keeping it true under node failures and flaky links.
package cluster

import "fmt"

// DefaultSlots is the default partition granularity. 256 slots over a
// handful of nodes keeps slices coarse enough to name in degradation
// reports yet fine enough that nodes stay within ~1 slot of even.
const DefaultSlots = 256

// Partition maps keys to nodes via FNV-1a hashing into a fixed slot space,
// with contiguous slot ranges assigned per node. It is immutable after
// construction and safe for concurrent use. The same key hash drives
// kavgen -replay's node-aware pre-routing, so a client that bypasses the
// router lands every operation on the same member the router would pick.
type Partition struct {
	slots int
	nodes int
	// bounds[i] is the first slot owned by node i; node i owns
	// [bounds[i], bounds[i+1]). bounds[nodes] == slots.
	bounds []int
}

// NewPartition builds a partition of `slots` slots over `nodes` nodes.
// Slots <= 0 selects DefaultSlots. Nodes must be >= 1 and <= slots.
func NewPartition(nodes, slots int) (*Partition, error) {
	if slots <= 0 {
		slots = DefaultSlots
	}
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, have %d", nodes)
	}
	if nodes > slots {
		return nil, fmt.Errorf("cluster: %d nodes exceed %d slots", nodes, slots)
	}
	p := &Partition{slots: slots, nodes: nodes, bounds: make([]int, nodes+1)}
	for i := 0; i <= nodes; i++ {
		p.bounds[i] = i * slots / nodes
	}
	return p, nil
}

// Slots reports the slot-space size.
func (p *Partition) Slots() int { return p.slots }

// Nodes reports the node count.
func (p *Partition) Nodes() int { return p.nodes }

// Slot hashes a key into its slot. The hash is FNV-1a 32-bit — the same
// function the replay driver and the online server's client-partitioning
// tests use — computed inline so string and []byte keys hash identically
// with no conversion allocation.
func (p *Partition) Slot(key []byte) int {
	h := uint32(offset32)
	for _, c := range key {
		h ^= uint32(c)
		h *= prime32
	}
	// Reduce in uint32 space: int(h) would go negative on 32-bit platforms.
	return int(h % uint32(p.slots))
}

// SlotString is Slot for string keys.
func (p *Partition) SlotString(key string) int {
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(p.slots))
}

// FNV-1a parameters (identical to hash/fnv's New32a).
const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Owner reports the node owning the key.
func (p *Partition) Owner(key []byte) int { return p.OwnerOfSlot(p.Slot(key)) }

// OwnerString is Owner for string keys.
func (p *Partition) OwnerString(key string) int { return p.OwnerOfSlot(p.SlotString(key)) }

// OwnerOfSlot reports the node owning a slot: the largest n with
// bounds[n] <= slot, which the equal contiguous ranges invert
// arithmetically (n*slots/nodes <= slot ⟺ n <= ⌈(slot+1)·nodes/slots⌉-1).
func (p *Partition) OwnerOfSlot(slot int) int {
	n := ((slot+1)*p.nodes+p.slots-1)/p.slots - 1
	if n < 0 {
		n = 0
	}
	if n >= p.nodes {
		n = p.nodes - 1
	}
	return n
}

// Range reports node n's contiguous slot range [Lo, Hi).
func (p *Partition) Range(n int) SlotRange {
	return SlotRange{Lo: p.bounds[n], Hi: p.bounds[n+1]}
}

// SlotRange is a half-open slot interval — the unit in which unreachable
// keyspace is named in degraded verdicts.
type SlotRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

func (r SlotRange) String() string { return fmt.Sprintf("slots [%d,%d)", r.Lo, r.Hi) }
