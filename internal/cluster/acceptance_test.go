package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kat"
	"kat/internal/chaosproxy"
	"kat/internal/core"
	"kat/internal/online"
	"kat/internal/trace"
)

// buildClusterTrace generates a deterministic multi-key trace with injected
// staleness, returning both the parsed trace (for the offline reference)
// and its arrival-order text (for ingestion). Mirrors the single-node
// acceptance fixture in internal/online so the cluster result is comparable
// to the same oracle.
func buildClusterTrace(t *testing.T, keys, opsPerKey int, inject float64) (*kat.Trace, string) {
	t.Helper()
	tr := kat.NewTrace()
	for ki := 0; ki < keys; ki++ {
		cfg := kat.GenConfig{
			Seed:         int64(ki + 1),
			Ops:          opsPerKey,
			Concurrency:  2,
			ReadFraction: 0.5,
		}
		h := kat.GenerateKAtomic(cfg)
		if inject > 0 && ki%2 == 0 {
			h = kat.InjectStaleness(h, cfg.Seed+100, inject, 2)
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%03d", ki), op)
		}
	}
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		t.Fatal(err)
	}
	return tr, b.String()
}

// TestHundredConcurrentReplayClientsCluster is the cluster acceptance
// check: the single-node hundred-client replay, scaled to three members
// behind the router with every member wrapped in a chaos proxy. 100
// concurrent clients replay a key-partitioned trace through the router
// while the proxies inject sheds, resets, half-forwarded drops, and torn
// responses between router and members. The router's retry+reconcile
// machinery must absorb all of it: clients see clean 200s, and after the
// coordinated drain the merged cluster verdict's per-key smallest-k must
// equal the offline checker on the merged trace — exactly what a single
// node reports, proving the partition is verdict-invariant under faults.
func TestHundredConcurrentReplayClientsCluster(t *testing.T) {
	fastRouterRetries(t)
	const clients = 100
	const nodes = 3
	keys, opsPerKey := 40, 60
	if testing.Short() {
		keys, opsPerKey = 12, 30
	}

	var proxies []*chaosproxy.Proxy
	// Forwarding is serialized per member, so one unlucky forward can eat a
	// member's whole fault budget back to back; give it retries to spare.
	cfg := Config{ForwardRetries: 24}
	for i := 0; i < nodes; i++ {
		pool := core.NewPool(2)
		defer pool.Close()
		srv := online.New(online.Config{K: 2, Stream: trace.StreamOptions{Pool: pool, MinSegmentOps: 4, Horizon: 64}})
		proxy := chaosproxy.New(srv.Handler(), chaosproxy.Faults{Shed503: 3, Reset: 2, Drop: 3, Torn: 2})
		ts := httptest.NewServer(proxy)
		defer ts.Close()
		proxies = append(proxies, proxy)
		cfg.Nodes = append(cfg.Nodes, ts.URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	tr, text := buildClusterTrace(t, keys, opsPerKey, 0.5)
	buckets := make([][]string, clients)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		f := strings.Fields(line)
		h := fnv.New32a()
		io.WriteString(h, f[1])
		b := int(h.Sum32() % clients)
		buckets[b] = append(buckets[b], line)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(bucket []string) {
			defer wg.Done()
			body := strings.Join(bucket, "\n") + "\n"
			resp, err := http.Post(rts.URL+"/ingest", "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("ingest: %s: %s", resp.Status, msg)
			}
		}(bucket)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	var injected int64
	for _, p := range proxies {
		injected += p.InjectedTotal()
	}
	if injected == 0 {
		t.Fatal("chaos proxies injected nothing; test proves nothing")
	}
	var retries, reconciles int64
	for _, m := range rt.members {
		retries += m.fwdRetries.Value()
		reconciles += m.reconciles.Value()
	}
	if retries == 0 {
		t.Fatalf("no forward retries despite %d injected faults", injected)
	}
	if reconciles == 0 {
		t.Fatalf("no reconciles despite %d injected faults", injected)
	}

	final := getClusterVerdict(t, rts.URL, "/drain", http.StatusOK)
	if !final.Cluster || !final.Drained || final.Partial {
		t.Fatalf("drain doc: cluster=%v drained=%v partial=%v", final.Cluster, final.Drained, final.Partial)
	}
	if int(final.Stats.Ops) != tr.Len() {
		t.Fatalf("cluster saw %d ops, trace has %d (chaos lost or duplicated ops)", final.Stats.Ops, tr.Len())
	}
	want := kat.SmallestKByKey(tr, kat.Options{})
	if len(final.Keys) != len(want) {
		t.Fatalf("cluster has %d keys, offline %d", len(final.Keys), len(want))
	}
	for _, ks := range final.Keys {
		if ks.Saturated {
			t.Fatalf("key %s saturated the horizon; raise Horizon in the test config", ks.Key)
		}
		if ks.SmallestK != want[ks.Key] {
			t.Fatalf("key %s: cluster smallest k=%d, offline kavcheck %d", ks.Key, ks.SmallestK, want[ks.Key])
		}
	}
}

// TestClusterFailoverAndReadmission kills one member abruptly mid-stream
// and walks the full degradation arc: typed degraded ingest naming the
// dead slice while healthy slices keep ingesting, a typed partial
// /verdict (never a hang), breaker open and half-open transitions
// observable while the node is down, then a restart on the same address
// followed by probe-driven re-admission, re-baselined forwarding, and a
// clean full-cluster drain.
func TestClusterFailoverAndReadmission(t *testing.T) {
	fastRouterRetries(t)

	// Members run on real listeners (not httptest) so one can die and come
	// back on the same host:port, the way the router would see a restart.
	startMember := func(addr string) (*http.Server, string) {
		t.Helper()
		var ln net.Listener
		var err error
		for i := 0; i < 100; i++ {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		hs := &http.Server{Handler: online.New(online.Config{K: 2}).Handler()}
		go hs.Serve(ln)
		return hs, ln.Addr().String()
	}

	servers := make([]*http.Server, 3)
	addrs := make([]string, 3)
	var cfg Config
	for i := range servers {
		servers[i], addrs[i] = startMember("127.0.0.1:0")
		defer servers[i].Close()
		cfg.Nodes = append(cfg.Nodes, "http://"+addrs[i])
	}

	var logMu sync.Mutex
	var logs strings.Builder
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 150 * time.Millisecond
	cfg.HopTimeout = 2 * time.Second
	cfg.ForwardRetries = 2
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&logs, format+"\n", args...)
		logMu.Unlock()
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// phaseTrace writes a later-timestamped round per phase so per-key
	// arrival order stays valid across the whole scenario.
	const nkeys, perPhase = 12, 5
	phaseTrace := func(phase int) (string, map[string]int) {
		var b strings.Builder
		want := map[string]int{}
		base := phase * 1000
		for i := 0; i < perPhase; i++ {
			for k := 0; k < nkeys; k++ {
				key := fmt.Sprintf("k%d", k)
				fmt.Fprintf(&b, "w %s %d %d %d\n", key, base+i+1, base+2*i, base+2*i+1)
				want[key]++
			}
		}
		return b.String(), want
	}
	part := rt.Partition()
	waitState := func(want BreakerState) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for rt.members[1].breaker.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("node 1 breaker never reached %s (now %s)", want, rt.members[1].breaker.State())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: healthy cluster, full batch lands everywhere.
	text1, _ := phaseTrace(1)
	resp, payload := postIngestText(t, rts.URL, text1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: %s: %s", resp.Status, payload)
	}

	// Kill member 1 abruptly: listener and live connections die at once.
	servers[1].Close()

	// Phase 2: degraded ingest — healthy slices keep going, the reject is
	// typed and names the dead slice, and Ingested counts exactly the
	// healthy-slice operations.
	text2, want2 := phaseTrace(2)
	resp, payload = postIngestText(t, rts.URL, text2)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: %s (want 503): %s", resp.Status, payload)
	}
	var reject DegradedReject
	if err := json.Unmarshal(payload, &reject); err != nil {
		t.Fatalf("decoding reject: %v: %s", err, payload)
	}
	if reject.Code != "degraded" || len(reject.Unreachable) != 1 || !strings.Contains(reject.Unreachable[0], "node 1") {
		t.Fatalf("reject = %+v, want degraded naming node 1", reject)
	}
	var healthy2 int64
	for key, n := range want2 {
		if part.OwnerString(key) != 1 {
			healthy2 += int64(n)
		}
	}
	if reject.Ingested != healthy2 {
		t.Fatalf("degraded Ingested = %d, want %d (healthy slices)", reject.Ingested, healthy2)
	}

	// The partial verdict is typed and prompt — 206 naming the slice.
	doc := getClusterVerdict(t, rts.URL, "/verdict", http.StatusPartialContent)
	if !doc.Partial || len(doc.Unreachable) != 1 || !strings.Contains(doc.Unreachable[0], "node 1") {
		t.Fatalf("partial verdict = partial=%v unreachable=%v", doc.Partial, doc.Unreachable)
	}

	// Probes trip the breaker open; after the cooldown it shows half-open
	// (trial would be admitted), and the still-dead node snaps it back
	// open — both transitions observable while the member is down.
	waitState(BreakerOpen)
	waitState(BreakerHalfOpen)
	hresp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var rh RouterHealth
	err = json.NewDecoder(hresp.Body).Decode(&rh)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rh.Status != "degraded" {
		t.Fatalf("router healthz status = %q, want degraded: %+v", rh.Status, rh)
	}

	// Restart on the same address (fresh empty state, as after a crash
	// without durability) and wait for probe-driven re-admission.
	servers[1], _ = startMember(addrs[1])
	defer servers[1].Close()
	waitState(BreakerClosed)
	logMu.Lock()
	logged := logs.String()
	logMu.Unlock()
	if !strings.Contains(logged, "breaker open") || !strings.Contains(logged, "healthy again") {
		t.Fatalf("router log missing breaker transitions:\n%s", logged)
	}

	// Phase 3: full batches land again — including on the restarted
	// member, which only works if re-admission re-baselined its acked
	// counts against the empty restarted state.
	text3, want3 := phaseTrace(3)
	resp, payload = postIngestText(t, rts.URL, text3)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest: %s: %s", resp.Status, payload)
	}

	final := getClusterVerdict(t, rts.URL, "/drain", http.StatusOK)
	if !final.Drained || final.Partial {
		t.Fatalf("final drain: drained=%v partial=%v", final.Drained, final.Partial)
	}
	got := map[string]int{}
	for _, ks := range final.Keys {
		got[ks.Key] = ks.Ops
	}
	for key := range want3 {
		// Node 1's keys lost phases 1-2 with the crash (no durability
		// here); everyone else holds all three phases.
		want := 3 * perPhase
		if part.OwnerString(key) == 1 {
			want = perPhase
		}
		if got[key] != want {
			t.Fatalf("key %s (owner %d): %d ops after recovery, want %d (all: %v)",
				key, part.OwnerString(key), got[key], want, got)
		}
	}
}
