package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/history"
	"kat/internal/metrics"
	"kat/internal/online"
	"kat/internal/trace"
	"kat/internal/wire"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes are the member base URLs ("http://host:port"), in partition
	// order: node i owns slot range i of the partition. Order matters —
	// clients that pre-route (kavgen -replay with a node list) must pass
	// the same order to land on the same members.
	Nodes []string
	// Slots is the partition granularity (0 selects DefaultSlots).
	Slots int
	// HopTimeout bounds each forwarded request (0: 5s).
	HopTimeout time.Duration
	// DrainTimeout bounds each member's coordinated drain (0: 60s) —
	// drains flush verification pipelines and legitimately outlive hops.
	DrainTimeout time.Duration
	// ProbeInterval spaces health probes per member (0: 1s).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure trip count (0: 3).
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell before a half-open trial
	// (0: 3s).
	BreakerCooldown time.Duration
	// ForwardRetries caps retry attempts per forwarded sub-batch beyond
	// the first (0: 6).
	ForwardRetries int
	// Client overrides the forwarding HTTP client (tests inject one wired
	// to httptest servers). Per-hop deadlines come from request contexts,
	// so the client needs no timeout of its own.
	Client *http.Client
	// Logf, when set, receives router event lines (probe transitions,
	// degraded requests).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Slots <= 0 {
		d.Slots = DefaultSlots
	}
	if d.HopTimeout <= 0 {
		d.HopTimeout = 5 * time.Second
	}
	if d.DrainTimeout <= 0 {
		d.DrainTimeout = 60 * time.Second
	}
	if d.ProbeInterval <= 0 {
		d.ProbeInterval = time.Second
	}
	if d.BreakerThreshold <= 0 {
		d.BreakerThreshold = 3
	}
	if d.BreakerCooldown <= 0 {
		d.BreakerCooldown = 3 * time.Second
	}
	if d.ForwardRetries <= 0 {
		d.ForwardRetries = 6
	}
	if d.Client == nil {
		d.Client = &http.Client{}
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
	return d
}

// Retry pacing for forwarded sub-batches; variables so tests shrink them.
var (
	routerRetryBase = 50 * time.Millisecond
	routerRetryMax  = 2 * time.Second
)

// Router is the cluster-mode ingress: it owns no verification state of its
// own, only the partition map, per-member circuit breakers, and per-member
// acked-operation counts used to reconcile ambiguous forwards.
//
// Contract: the router is the sole ingress to its members. Per-member
// forwarding is serialized, and after any ambiguous transport failure the
// member's authoritative /verdict counts tell the router exactly which
// leading per-key operations already landed — sound only if nobody else
// writes to the member concurrently. (kavgen -replay's node-list mode
// bypasses the router entirely and applies the same reconcile logic per
// node itself; mixing both ingress paths at once is unsupported.)
type Router struct {
	cfg     Config
	part    *Partition
	members []*member
	reg     *metrics.Registry

	ingestReqs       *metrics.Counter
	degradedIngests  *metrics.Counter
	degradedVerdicts *metrics.Counter

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// member is one node: its address, breaker, forwarding serialization, and
// the acked per-key counts backing reconciliation.
type member struct {
	idx     int
	base    string
	label   string // metrics label value: host:port
	breaker *Breaker

	// fwdMu serializes forwarding (and reconciliation) to this member,
	// which is what makes the acked-count arithmetic sound.
	fwdMu sync.Mutex
	acked map[string]int64
	// needBaseline asks the next forward to refresh acked from the
	// member's /verdict — set at construction and on breaker re-admission
	// (the member may have restarted with recovered or empty state).
	needBaseline atomic.Bool

	fwdBatches    *metrics.Counter
	fwdOps        *metrics.Counter
	fwdBytes      *metrics.Counter
	fwdRetries    *metrics.Counter
	reconciles    *metrics.Counter
	probeFailures *metrics.Counter
	hopNanos      atomic.Int64
}

// NewRouter builds a Router over the given members. Call Start to launch
// health probes and Close to stop them.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no member nodes")
	}
	part, err := NewPartition(len(cfg.Nodes), cfg.Slots)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:  cfg,
		part: part,
		reg:  metrics.NewRegistry(),
		stop: make(chan struct{}),
	}
	rt.reg.Gauge("kavserve_router_nodes", "Cluster member count.",
		func() float64 { return float64(len(cfg.Nodes)) })
	rt.ingestReqs = rt.reg.Counter("kavserve_router_ingest_requests_total",
		"Ingest requests accepted for routing.")
	rt.degradedIngests = rt.reg.Counter("kavserve_router_degraded_ingests_total",
		"Ingest requests answered degraded (at least one member slice unreachable).")
	rt.degradedVerdicts = rt.reg.Counter("kavserve_router_degraded_verdicts_total",
		"Verdict requests answered partial (at least one member unreachable).")
	for i, base := range cfg.Nodes {
		base = strings.TrimRight(base, "/")
		m := &member{
			idx:     i,
			base:    base,
			label:   strings.TrimPrefix(strings.TrimPrefix(base, "https://"), "http://"),
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			acked:   map[string]int64{},
		}
		m.needBaseline.Store(true)
		lbl := `node="` + m.label + `"`
		m.fwdBatches = rt.reg.CounterL("kavserve_router_forward_batches_total",
			"Sub-batches forwarded cleanly, per member.", lbl)
		m.fwdOps = rt.reg.CounterL("kavserve_router_forward_ops_total",
			"Operations forwarded and acknowledged, per member.", lbl)
		m.fwdBytes = rt.reg.CounterL("kavserve_router_forward_bytes_total",
			"Request-body bytes forwarded, per member (includes retries).", lbl)
		m.fwdRetries = rt.reg.CounterL("kavserve_router_forward_retries_total",
			"Forward attempts beyond the first, per member.", lbl)
		m.reconciles = rt.reg.CounterL("kavserve_router_reconciles_total",
			"Ambiguous forwards reconciled against the member's /verdict, per member.", lbl)
		m.probeFailures = rt.reg.CounterL("kavserve_router_probe_failures_total",
			"Failed health probes, per member.", lbl)
		rt.reg.GaugeL("kavserve_router_breaker_state",
			"Member circuit breaker state (0 closed, 1 half-open, 2 open).", lbl,
			func() float64 { return float64(m.breaker.State()) })
		rt.reg.CounterFuncL("kavserve_router_hop_seconds_total",
			"Cumulative wall time spent on forwarded hops, per member.", lbl,
			func() float64 { return float64(m.hopNanos.Load()) / 1e9 })
		rt.members = append(rt.members, m)
	}
	return rt, nil
}

// Partition exposes the router's key→node map (kavserve's router mode logs
// the slot layout at startup).
func (rt *Router) Partition() *Partition { return rt.part }

// Start launches one health-probe goroutine per member.
func (rt *Router) Start() {
	for _, m := range rt.members {
		rt.wg.Add(1)
		go rt.probeLoop(m)
	}
}

// Close stops the probes. Safe to call more than once.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

func (rt *Router) probeLoop(m *member) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		before := m.breaker.State()
		if err := rt.probe(m); err != nil {
			m.probeFailures.Inc()
			m.breaker.Failure()
			if before == BreakerClosed && m.breaker.State() == BreakerOpen {
				rt.cfg.Logf("cluster: node %d (%s) unhealthy, breaker open: %v", m.idx, m.base, err)
			}
			continue
		}
		m.breaker.Success()
		if before != BreakerClosed {
			// Re-admission: the member may have restarted with recovered or
			// empty state, so the acked baseline must be refreshed before
			// the next forward trims anything.
			m.needBaseline.Store(true)
			rt.cfg.Logf("cluster: node %d (%s) healthy again, breaker closed", m.idx, m.base)
		}
	}
}

func (rt *Router) probe(m *member) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HopTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// Handler returns the router's HTTP surface — the same endpoint shapes a
// single kavserve node serves, so clients need not know they talk to a
// cluster until a degraded response names unreachable slices.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", rt.handleIngest)
	mux.HandleFunc("GET /verdict", rt.handleVerdict)
	mux.HandleFunc("GET /verdict/{key}", rt.handleVerdictKey)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /drain", rt.handleDrain)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// DegradedReject is the router's /ingest failure body: the single-node
// IngestReject shape plus the unreachable keyspace slices. Code "degraded"
// breaks one single-node invariant on purpose — Ingested counts operations
// accepted across ALL members and is NOT a prefix of the request, because
// the batch was split per owner. Clients must reconcile per key against
// /verdict rather than prefix-trim.
type DegradedReject struct {
	online.IngestReject
	Unreachable []string        `json:"unreachable,omitempty"`
	Slices      []DegradedSlice `json:"slices,omitempty"`
}

// DegradedSlice details one failed member slice of a degraded ingest. Code
// is the member's own reject code ("" when the failure was transport-level
// or breaker-gated), preserved so clients keep the per-slice diagnostic the
// top-level code would otherwise mask.
type DegradedSlice struct {
	Slice string `json:"slice"`
	Code  string `json:"code,omitempty"`
	Error string `json:"error"`
}

// stickyRejectCodes are member reject codes a blind retry of the same batch
// cannot cure (see online.IngestReject); the router omits Retry-After when
// every failed slice is sticky so clients stop instead of burning attempts.
var stickyRejectCodes = map[string]bool{
	"draining":     true,
	"out_of_order": true,
	"buffer_limit": true,
	"durability":   true,
	"malformed":    true,
}

// rejectStatus maps a member reject code to the HTTP status the single-node
// server uses for it, so a uniform typed failure round-trips the cluster
// with unchanged semantics.
func rejectStatus(code string) int {
	switch code {
	case "draining", "out_of_order":
		return http.StatusConflict
	case "malformed":
		return http.StatusBadRequest
	case "durability":
		return http.StatusInternalServerError
	default: // buffer_limit, overload, degraded
		return http.StatusServiceUnavailable
	}
}

// slice names a member's keyspace slice for degradation reports.
func (rt *Router) slice(m *member) string {
	return fmt.Sprintf("node %d (%s): %s", m.idx, m.base, rt.part.Range(m.idx))
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	rt.ingestReqs.Inc()
	ops, isWire, off, err := decodeBatch(r)
	if err != nil {
		// Decode-fully-before-forwarding means a malformed batch rejects
		// atomically: nothing was forwarded, Ingested is genuinely 0.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(online.IngestReject{
			Code: "malformed", Error: err.Error(), Offset: off,
		})
		return
	}
	// Split by owner, preserving input order inside each sub-batch — a
	// key maps to exactly one node, so per-key operation order survives
	// the split exactly.
	sub := make([][]wire.Op, len(rt.members))
	for _, op := range ops {
		n := rt.part.OwnerString(op.Key)
		sub[n] = append(sub[n], op)
	}
	type fwdResult struct {
		m     *member
		acked int64
		err   *forwardError
	}
	var wg sync.WaitGroup
	results := make([]fwdResult, 0, len(rt.members))
	var mu sync.Mutex
	for n, batch := range sub {
		if len(batch) == 0 {
			continue
		}
		m := rt.members[n]
		wg.Add(1)
		go func(m *member, batch []wire.Op) {
			defer wg.Done()
			acked, ferr := rt.forward(r.Context(), m, batch, isWire)
			mu.Lock()
			results = append(results, fwdResult{m, acked, ferr})
			mu.Unlock()
		}(m, batch)
	}
	wg.Wait()

	var total int64
	var failed []fwdResult
	for _, res := range results {
		total += res.acked
		if res.err != nil {
			failed = append(failed, res)
		}
	}
	if len(failed) == 0 {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ingested\": %d}\n", total)
		return
	}
	// Degraded: healthy slices kept ingesting; name the failed ones, each
	// with its member's own reject code so the machine-readable diagnostic
	// survives the merge. When every failed slice rejected with the same
	// typed code the router surfaces that code (and its status) instead of
	// the generic "degraded", and Retry-After is set only if at least one
	// failure is retryable — sticky member rejects (draining, out_of_order,
	// buffer_limit, durability) cannot be cured by resending the same batch.
	sort.Slice(failed, func(a, b int) bool { return failed[a].m.idx < failed[b].m.idx })
	reject := DegradedReject{IngestReject: online.IngestReject{Code: "degraded", Ingested: total}}
	common := failed[0].err.code
	anyRetryable := false
	var msgs []string
	for _, res := range failed {
		if res.err.code != common {
			common = ""
		}
		if !stickyRejectCodes[res.err.code] {
			anyRetryable = true
		}
		slice := rt.slice(res.m)
		reject.Unreachable = append(reject.Unreachable, slice)
		reject.Slices = append(reject.Slices, DegradedSlice{
			Slice: slice, Code: res.err.code, Error: res.err.err.Error(),
		})
		msgs = append(msgs, fmt.Sprintf("%s: %v", slice, res.err.err))
	}
	reject.Error = "degraded: " + strings.Join(msgs, "; ")
	status := http.StatusServiceUnavailable
	if common != "" {
		reject.Code = common
		status = rejectStatus(common)
	}
	if anyRetryable {
		w.Header().Set("Retry-After", "1")
	}
	rt.degradedIngests.Inc()
	rt.cfg.Logf("cluster: degraded ingest (%d/%d ops accepted): %s", total, len(ops), reject.Error)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(reject)
}

// decodeBatch reads the whole request body into keyed operations, codec by
// Content-Type, before anything is forwarded.
func decodeBatch(r *http.Request) (ops []wire.Op, isWire bool, off *int64, err error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, false, nil, fmt.Errorf("reading body: %w", err)
	}
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	if strings.TrimSpace(ct) == wire.ContentType {
		dec := wire.NewDecoder(bytes.NewReader(body))
		for {
			batch, err := dec.Next()
			if err == io.EOF {
				return ops, true, nil, nil
			}
			if err != nil {
				var werr *wire.DecodeError
				if errors.As(err, &werr) {
					return nil, true, &werr.Offset, err
				}
				return nil, true, nil, err
			}
			ops = append(ops, batch...)
		}
	}
	err = trace.ParseStreamBytes(bytes.NewReader(body), func(key []byte, op history.Operation) error {
		ops = append(ops, wire.Op{Key: string(key), Op: op})
		return nil
	})
	if err != nil {
		return nil, false, nil, err
	}
	return ops, false, nil, nil
}

// forwardError is a sub-batch forwarding failure with its protocol code
// ("" when the failure was transport-level or breaker-gated).
type forwardError struct {
	code string
	err  error
}

// forward delivers batch to m with retry/backoff, reconciling ambiguous
// transport failures against the member's /verdict. It returns how many of
// batch's operations the member accepted (under failure this may be any
// per-key-prefix subset — deliberately not a batch prefix).
func (rt *Router) forward(ctx context.Context, m *member, batch []wire.Op, isWire bool) (int64, *forwardError) {
	m.fwdMu.Lock()
	defer m.fwdMu.Unlock()

	var acked int64
	remaining := batch
	// ambiguous marks an in-flight post whose fate is unknown: the member
	// may hold operations m.acked does not credit. While it is set nothing
	// may be resent — only a reconcile against the member's authoritative
	// counts clears it. And if forward exits with it still set (retries
	// exhausted, breaker fail-fast, ctx canceled), the acked baseline is
	// stale-low, so it must be refreshed from /verdict before any later
	// forward trusts count deltas — a stale baseline would make that
	// forward's reconcile trim NEW operations as "already applied".
	ambiguous := false
	defer func() {
		if ambiguous {
			m.needBaseline.Store(true)
		}
	}()
	for attempt := 0; ; attempt++ {
		if len(remaining) == 0 {
			m.fwdBatches.Inc()
			return acked, nil
		}
		if attempt > rt.cfg.ForwardRetries {
			return acked, &forwardError{err: fmt.Errorf("gave up after %d attempts", attempt)}
		}
		if attempt > 0 {
			m.fwdRetries.Inc()
			if !sleepCtx(ctx, backoffDelay(attempt)) {
				return acked, &forwardError{err: ctx.Err()}
			}
		}
		if !m.breaker.Allow() {
			return acked, &forwardError{err: fmt.Errorf("circuit breaker %s", m.breaker.State())}
		}
		if ambiguous {
			// Resolve the in-flight post before anything else touches the
			// wire: the member may have applied none, part, or all of it,
			// and a blind resend would double-ingest whatever landed.
			left, applied, rerr := rt.reconcile(ctx, m, remaining)
			if rerr != nil {
				// Member unreachable for reconcile too; retry the loop (the
				// breaker will gate if this keeps up).
				m.breaker.Failure()
				continue
			}
			m.reconciles.Inc()
			m.breaker.Success() // /verdict answered: the node is alive
			ambiguous = false
			acked += applied
			m.fwdOps.Add(applied)
			remaining = left
			if len(remaining) == 0 {
				m.fwdBatches.Inc()
				return acked, nil
			}
			// Resolved: fall through and resend the trimmed remainder in
			// this same attempt, so one injected fault still costs one
			// attempt of the retry budget.
		}
		if m.needBaseline.Load() {
			counts, err := rt.fetchCounts(ctx, m)
			if err != nil {
				m.breaker.Failure()
				continue
			}
			m.acked = counts
			m.needBaseline.Store(false)
		}
		body, err := renderBatch(remaining, isWire)
		if err != nil {
			// Re-encoding cannot fail for operations that decoded; treat as
			// a terminal routing defect rather than retrying.
			m.breaker.Success()
			return acked, &forwardError{code: "malformed", err: err}
		}
		n, ferr := rt.postOnce(ctx, m, body, isWire)
		if ferr == nil {
			addAcked(m.acked, remaining, len(remaining))
			acked += int64(len(remaining))
			m.fwdOps.Add(int64(len(remaining)))
			m.fwdBatches.Inc()
			m.breaker.Success()
			return acked, nil
		}
		switch {
		case ferr.code == "overload":
			// Transient shed: the member applied nothing; resend as-is.
			m.breaker.Success()
			continue
		case ferr.code != "":
			// Typed terminal reject. The member accepted a prefix of the
			// sub-batch (single-node prefix semantics); account for it.
			addAcked(m.acked, remaining, int(n))
			acked += n
			m.fwdOps.Add(n)
			m.breaker.Success()
			return acked, ferr
		default:
			// Transport-level: timeout, refused, torn response. The batch's
			// fate is unknown; mark it ambiguous so the next attempt
			// reconciles before any resend.
			m.breaker.Failure()
			ambiguous = true
			continue
		}
	}
}

// postOnce performs one /ingest hop. A nil error means the whole body was
// accepted. Protocol rejects carry their code; transport failures carry
// code "".
func (rt *Router) postOnce(ctx context.Context, m *member, body []byte, isWire bool) (int64, *forwardError) {
	hctx, cancel := context.WithTimeout(ctx, rt.cfg.HopTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost, m.base+"/ingest", bytes.NewReader(body))
	if err != nil {
		return 0, &forwardError{err: err}
	}
	if isWire {
		req.Header.Set("Content-Type", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "text/plain")
	}
	m.fwdBytes.Add(int64(len(body)))
	start := time.Now()
	resp, err := rt.cfg.Client.Do(req)
	m.hopNanos.Add(int64(time.Since(start)))
	if err != nil {
		return 0, &forwardError{err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// Accepted status but torn body: ambiguous, same as a dead hop.
		return 0, &forwardError{err: fmt.Errorf("reading member response: %w", err)}
	}
	if resp.StatusCode == http.StatusOK {
		return 0, nil
	}
	var reject online.IngestReject
	if jerr := json.Unmarshal(payload, &reject); jerr != nil || reject.Code == "" {
		return 0, &forwardError{err: fmt.Errorf("member %s: %s: %.200s", m.base, resp.Status, payload)}
	}
	return reject.Ingested, &forwardError{
		code: reject.Code,
		err:  fmt.Errorf("member %s: %s (%s)", m.base, reject.Code, reject.Error),
	}
}

// reconcile refreshes m.acked from the member's /verdict and trims the
// leading per-key operations of remaining that the member already holds.
// Sound because the router serializes forwarding per member and is the
// sole ingress: any count growth since the last acked snapshot is exactly
// the prefix of in-flight operations that landed.
func (rt *Router) reconcile(ctx context.Context, m *member, remaining []wire.Op) ([]wire.Op, int64, error) {
	counts, err := rt.fetchCounts(ctx, m)
	if err != nil {
		return remaining, 0, err
	}
	skip := map[string]int64{}
	for key, have := range counts {
		if d := have - m.acked[key]; d > 0 {
			skip[key] = d
		}
	}
	var left []wire.Op
	var applied int64
	for _, op := range remaining {
		if skip[op.Key] > 0 {
			skip[op.Key]--
			applied++
			continue
		}
		left = append(left, op)
	}
	m.acked = counts
	return left, applied, nil
}

// fetchCounts reads the member's authoritative per-key ingested-operation
// counts off /verdict.
func (rt *Router) fetchCounts(ctx context.Context, m *member) (map[string]int64, error) {
	doc, err := rt.fetchVerdict(ctx, m, rt.cfg.HopTimeout)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int64, len(doc.Keys))
	for _, ks := range doc.Keys {
		counts[ks.Key] = int64(ks.Ops)
	}
	return counts, nil
}

func (rt *Router) fetchVerdict(ctx context.Context, m *member, timeout time.Duration) (online.VerdictDoc, error) {
	return rt.memberDoc(ctx, m, http.MethodGet, "/verdict", timeout)
}

func (rt *Router) memberDoc(ctx context.Context, m *member, method, path string, timeout time.Duration) (online.VerdictDoc, error) {
	var doc online.VerdictDoc
	hctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, method, m.base+path, nil)
	if err != nil {
		return doc, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return doc, fmt.Errorf("member %s: %s %s: %s: %.200s", m.base, method, path, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("member %s: decoding %s: %w", m.base, path, err)
	}
	return doc, nil
}

// addAcked credits the first n operations of batch to the per-key acked
// counts.
func addAcked(acked map[string]int64, batch []wire.Op, n int) {
	for i := 0; i < n && i < len(batch); i++ {
		acked[batch[i].Key]++
	}
}

// renderBatch re-encodes operations in the inbound codec: the router
// forwards wire as wire (self-contained frames) and text as text, so each
// member's codec metrics still reflect what producers actually sent.
func renderBatch(ops []wire.Op, isWire bool) ([]byte, error) {
	if isWire {
		return wire.EncodeSelfContained(nil, ops, false)
	}
	var buf []byte
	for _, op := range ops {
		buf = trace.AppendKeyedOpText(buf, op.Key, op.Op)
	}
	return buf, nil
}

// backoffDelay is the jittered exponential backoff before attempt n (>=1).
func backoffDelay(attempt int) time.Duration {
	d := routerRetryBase << (attempt - 1)
	if d > routerRetryMax || d <= 0 {
		d = routerRetryMax
	}
	// Full jitter in [d/2, d): desynchronizes concurrent retriers.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// NodeVerdict is one member's entry in a ClusterVerdict.
type NodeVerdict struct {
	Node    string `json:"node"`
	Index   int    `json:"index"`
	Slots   string `json:"slots"`
	Breaker string `json:"breaker"`
	Keys    int    `json:"keys"`
	Ops     int64  `json:"ops"`
	Err     string `json:"error,omitempty"`
}

// ClusterVerdict is the router's /verdict (and /drain) response: the
// single-node document shape — keys merged across members, stats summed —
// plus cluster topology and degradation detail. Partial marks at least one
// member unreachable; its keyspace slices are named in Unreachable and its
// keys are absent from Keys, and the response goes out 206.
type ClusterVerdict struct {
	online.VerdictDoc
	Cluster     bool          `json:"cluster"`
	Partial     bool          `json:"partial,omitempty"`
	Nodes       []NodeVerdict `json:"nodes"`
	Unreachable []string      `json:"unreachable,omitempty"`
}

func (rt *Router) handleVerdict(w http.ResponseWriter, r *http.Request) {
	rt.clusterDoc(w, r, http.MethodGet, "/verdict", rt.cfg.HopTimeout)
}

func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	// Coordinated drain: every member flushes and finalizes; the merged
	// document is final iff every member answered drained.
	rt.clusterDoc(w, r, http.MethodPost, "/drain", rt.cfg.DrainTimeout)
}

func (rt *Router) clusterDoc(w http.ResponseWriter, r *http.Request, method, path string, timeout time.Duration) {
	type memberDoc struct {
		doc online.VerdictDoc
		err error
	}
	docs := make([]memberDoc, len(rt.members))
	var wg sync.WaitGroup
	for i, m := range rt.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			doc, err := rt.memberDoc(r.Context(), m, method, path, timeout)
			docs[i] = memberDoc{doc, err}
		}(i, m)
	}
	wg.Wait()

	out := ClusterVerdict{Cluster: true}
	out.Drained = true
	reachable := 0
	for i, md := range docs {
		m := rt.members[i]
		nv := NodeVerdict{
			Node:    m.base,
			Index:   i,
			Slots:   rt.part.Range(i).String(),
			Breaker: m.breaker.State().String(),
		}
		if md.err != nil {
			nv.Err = md.err.Error()
			out.Partial = true
			out.Drained = false
			out.Unreachable = append(out.Unreachable, rt.slice(m))
			out.Nodes = append(out.Nodes, nv)
			continue
		}
		reachable++
		nv.Keys = len(md.doc.Keys)
		nv.Ops = md.doc.Stats.Ops
		out.Nodes = append(out.Nodes, nv)
		if out.K == 0 {
			out.K = md.doc.K
		}
		if out.Properties == "" {
			out.Properties = md.doc.Properties
		}
		out.Drained = out.Drained && md.doc.Drained
		out.Keys = append(out.Keys, md.doc.Keys...)
		mergeStats(&out.Stats, md.doc.Stats)
	}
	out.Keys = foldKeys(out.Keys)
	if reachable == 0 {
		rt.degradedVerdicts.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(out)
		return
	}
	status := http.StatusOK
	if out.Partial {
		rt.degradedVerdicts.Inc()
		status = http.StatusPartialContent
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// MergeDocs merges per-member verdict documents into one cluster-wide
// document: keys key-sorted and folded (disjoint by the routing invariant,
// but duplicates — e.g. a key re-ingested on a second node across separate
// runs — fold commutatively per property), stats folded, K and Properties
// taken from the first document carrying them, Drained the conjunction.
// kavgen -replay's node-list mode uses it to print one final cluster
// verdict after a coordinated member-by-member drain.
func MergeDocs(docs []online.VerdictDoc) online.VerdictDoc {
	var out online.VerdictDoc
	out.Drained = len(docs) > 0
	for _, d := range docs {
		if out.K == 0 {
			out.K = d.K
		}
		if out.Properties == "" {
			out.Properties = d.Properties
		}
		out.Drained = out.Drained && d.Drained
		out.Keys = append(out.Keys, d.Keys...)
		mergeStats(&out.Stats, d.Stats)
		mergeRetired(&out.Retired, d.Retired)
		out.Epochs = append(out.Epochs, d.Epochs...)
	}
	out.Keys = foldKeys(out.Keys)
	out.Epochs = foldEpochs(out.Epochs)
	return out
}

// mergeRetired folds one member's retired-key summary into the cluster
// total: counts sum, worst-case per-property floors take the max. Cloned
// before mutation — the source pointer belongs to the member document.
func mergeRetired(dst **trace.RetiredSummary, src *trace.RetiredSummary) {
	if src == nil {
		return
	}
	if *dst == nil {
		cp := *src
		*dst = &cp
		return
	}
	d := *dst
	d.Keys += src.Keys
	d.Ops += src.Ops
	d.Retirements += src.Retirements
	d.Readmissions += src.Readmissions
	d.MaxK = max(d.MaxK, src.MaxK)
	d.MaxDelta = max(d.MaxDelta, src.MaxDelta)
	d.UnsafeReads += src.UnsafeReads
	d.IrregularReads += src.IrregularReads
	d.Errors += src.Errors
}

// foldEpochs merges per-member epoch windows by epoch number (epochs are
// trace-time indices, so the same epoch on different nodes is the same
// window over different keys). Members' folded aggregates — already
// multi-epoch — merge into one, keeping the highest folded index. Every
// fold is commutative (sums and maxes), so the result is node-order
// independent, like foldKeys.
func foldEpochs(all []trace.EpochStats) []trace.EpochStats {
	if len(all) == 0 {
		return nil
	}
	byEpoch := make(map[int64]*trace.EpochStats)
	var folded *trace.EpochStats
	for _, es := range all {
		es := es
		if es.Folded {
			if folded == nil {
				folded = &es
			} else {
				foldEpochStats(folded, es)
			}
			continue
		}
		if cur, ok := byEpoch[es.Epoch]; ok {
			foldEpochStats(cur, es)
		} else {
			byEpoch[es.Epoch] = &es
		}
	}
	out := make([]trace.EpochStats, 0, len(byEpoch)+1)
	if folded != nil {
		out = append(out, *folded)
	}
	eps := make([]int64, 0, len(byEpoch))
	for ep := range byEpoch {
		eps = append(eps, ep)
	}
	sort.Slice(eps, func(a, b int) bool { return eps[a] < eps[b] })
	for _, ep := range eps {
		out = append(out, *byEpoch[ep])
	}
	return out
}

// foldEpochStats folds src into dst: counts sum, floors max; the epoch
// index takes the max (meaningful only for the Folded aggregate, whose
// index is "highest epoch folded in" — same-epoch merges are equal).
func foldEpochStats(dst *trace.EpochStats, src trace.EpochStats) {
	dst.Epoch = max(dst.Epoch, src.Epoch)
	dst.Ops += src.Ops
	dst.Segments += src.Segments
	dst.StaleReads += src.StaleReads
	dst.MaxK = max(dst.MaxK, src.MaxK)
	dst.MaxDelta = max(dst.MaxDelta, src.MaxDelta)
	dst.Violations += src.Violations
	dst.UnsafeReads += src.UnsafeReads
	dst.IrregularReads += src.IrregularReads
	dst.Errors += src.Errors
}

// foldKeys key-sorts the concatenated per-member entries and folds
// duplicates of the same key into one entry. Every per-property fold is
// commutative — max for the k and Δ lower bounds, disjunction for
// saturation, sums for operation and offending-read counts — so the merged
// entry is node-order independent.
func foldKeys(keys []online.KeyStatus) []online.KeyStatus {
	sort.Slice(keys, func(a, b int) bool { return keys[a].Key < keys[b].Key })
	folded := keys[:0]
	for _, ks := range keys {
		if n := len(folded); n > 0 && folded[n-1].Key == ks.Key {
			mergeKeyStatus(&folded[n-1], ks)
			continue
		}
		folded = append(folded, ks)
	}
	return folded
}

// statusRank orders verdict statuses by severity for the duplicate-key fold.
func statusRank(status string) int {
	switch status {
	case "error":
		return 3
	case "violating":
		return 2
	case "indeterminate":
		return 1
	default:
		return 0
	}
}

// mergeKeyStatus folds a duplicate entry for the same key into dst.
func mergeKeyStatus(dst *online.KeyStatus, src online.KeyStatus) {
	dst.Ops += src.Ops
	dst.PendingOps += src.PendingOps
	dst.SmallestK = max(dst.SmallestK, src.SmallestK)
	dst.Saturated = dst.Saturated || src.Saturated
	// A merged entry is only "retired" (verdict final pre-drain) if every
	// copy is.
	dst.Retired = dst.Retired && src.Retired
	if statusRank(src.Status) > statusRank(dst.Status) {
		dst.Status = src.Status
	}
	if dst.Err == "" {
		dst.Err = src.Err
	}
	if src.Violation != nil && (dst.Violation == nil || src.Violation.Seq < dst.Violation.Seq) {
		v := *src.Violation
		dst.Violation = &v
	}
	// Clone before mutating: the pointers are shared with the source
	// documents, which the caller may still hold.
	if src.Delta != nil {
		d := *src.Delta
		if dst.Delta != nil {
			d.SmallestDelta = max(dst.Delta.SmallestDelta, src.Delta.SmallestDelta)
			d.Saturated = dst.Delta.Saturated || src.Delta.Saturated
		}
		dst.Delta = &d
	}
	if src.Regularity != nil {
		r := *src.Regularity
		if dst.Regularity != nil {
			r.IrregularReads += dst.Regularity.IrregularReads
			r.UnsafeReads += dst.Regularity.UnsafeReads
		}
		r.Regular = r.IrregularReads == 0
		r.Safe = r.UnsafeReads == 0
		dst.Regularity = &r
	}
}

// mergeStats folds one member's stream statistics into the cluster total.
// Counters sum; MaxOpenOps is a per-window maximum so it takes the max;
// FirstVerdictOps is meaningless across nodes and stays zero.
func mergeStats(dst *trace.StreamStats, s trace.StreamStats) {
	dst.Ops += s.Ops
	dst.Keys += s.Keys
	dst.Segments += s.Segments
	dst.Merges += s.Merges
	dst.StaleReads += s.StaleReads
	dst.SaturatedKeys += s.SaturatedKeys
	dst.PeakBufferedOps += s.PeakBufferedOps
	dst.Spills += s.Spills
	dst.OpsSpilled += s.OpsSpilled
	dst.SpillLoads += s.SpillLoads
	dst.RetiredKeys += s.RetiredKeys
	dst.Retirements += s.Retirements
	dst.Readmissions += s.Readmissions
	if s.MaxOpenOps > dst.MaxOpenOps {
		dst.MaxOpenOps = s.MaxOpenOps
	}
	dst.Stopped = dst.Stopped || s.Stopped
}

func (rt *Router) handleVerdictKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	m := rt.members[rt.part.OwnerString(key)]
	hctx, cancel := context.WithTimeout(r.Context(), rt.cfg.HopTimeout)
	defer cancel()
	// PathValue decoded the segment; re-escape it for the member URL so
	// keys containing reserved bytes ('%', '?', '#') survive the hop.
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, m.base+"/verdict/"+url.PathEscape(key), nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.degradedVerdicts.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(DegradedReject{
			IngestReject: online.IngestReject{
				Code:  "degraded",
				Error: fmt.Sprintf("key %q owner unreachable: %v", key, err),
			},
			Unreachable: []string{rt.slice(m)},
		})
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.reg.WriteTo(w)
	// Relabeled member expositions follow the router's own: one exposition,
	// every member sample tagged with its node label, HELP/TYPE headers
	// deduplicated across members.
	seen := map[string]bool{}
	for _, m := range rt.members {
		hctx, cancel := context.WithTimeout(r.Context(), rt.cfg.HopTimeout)
		req, err := http.NewRequestWithContext(hctx, http.MethodGet, m.base+"/metrics", nil)
		var resp *http.Response
		if err == nil {
			resp, err = rt.cfg.Client.Do(req)
		}
		if err != nil {
			cancel()
			fmt.Fprintf(w, "# node %s unreachable: %s\n", m.label, strings.ReplaceAll(err.Error(), "\n", " "))
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		cancel()
		if rerr != nil {
			fmt.Fprintf(w, "# node %s unreachable: %s\n", m.label, strings.ReplaceAll(rerr.Error(), "\n", " "))
			continue
		}
		metrics.WriteRelabeled(w, body, `node="`+m.label+`"`, seen)
	}
}

// NodeHealth is one member's entry in the router's /healthz document.
type NodeHealth struct {
	Node    string `json:"node"`
	Index   int    `json:"index"`
	Slots   string `json:"slots"`
	Breaker string `json:"breaker"`
}

// RouterHealth is the router-mode /healthz body.
type RouterHealth struct {
	Status string       `json:"status"` // "ok" | "degraded"
	Mode   string       `json:"mode"`   // always "router"
	Nodes  []NodeHealth `json:"nodes"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := RouterHealth{Status: "ok", Mode: "router"}
	for i, m := range rt.members {
		state := m.breaker.State()
		if state != BreakerClosed {
			h.Status = "degraded"
		}
		h.Nodes = append(h.Nodes, NodeHealth{
			Node: m.base, Index: i, Slots: rt.part.Range(i).String(), Breaker: state.String(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}
