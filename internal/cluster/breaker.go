package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one trial request after the cooldown;
	// its outcome snaps the breaker closed or back open.
	BreakerHalfOpen
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker with half-open
// recovery. Both the router's health probes and its forwarding results
// feed it, so a node that answers probes but fails ingests still trips.
// Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	// trial guards the half-open single-admission: one request probes the
	// node, everyone else keeps failing fast until its outcome lands.
	trial bool
}

// NewBreaker builds a closed breaker tripping after `threshold`
// consecutive failures and cooling down for `cooldown` before admitting a
// half-open trial.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State reports the breaker's position, advancing open → half-open if the
// cooldown has elapsed (so metrics gauges show "half-open" as soon as a
// trial would be admitted, not only after one arrives).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may proceed. In half-open it admits a
// single trial; callers that get true MUST report the outcome via Success
// or Failure, or the breaker wedges half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		fallthrough
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a request that reached the node and got a protocol-level
// answer. It closes the breaker from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trial = false
}

// Failure records a transport-level failure (timeout, refused connection,
// torn response). A half-open trial failure re-opens immediately; closed
// failures open once the consecutive count reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	}
}
