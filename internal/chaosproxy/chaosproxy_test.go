package chaosproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kat/internal/online"
	"kat/internal/trace"
)

func ingestBody(keys, ops int) string {
	var b strings.Builder
	for i := 0; i < ops; i++ {
		for k := 0; k < keys; k++ {
			fmt.Fprintf(&b, "w k%d %d %d %d\n", k, i+1, 2*i, 2*i+1)
		}
	}
	return b.String()
}

func post(t *testing.T, url, body string) (*http.Response, error) {
	t.Helper()
	return http.Post(url+"/ingest", "text/plain", strings.NewReader(body))
}

func TestShedBudget(t *testing.T) {
	srv := online.New(online.Config{K: 2})
	p := New(srv.Handler(), Faults{Shed503: 2})
	ts := httptest.NewServer(p)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, err := post(t, ts.URL, "w a 1 0 1\n")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed %d: %s, want 503", i, resp.Status)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed without Retry-After")
		}
	}
	resp, err := post(t, ts.URL, "w a 1 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget spent but still shedding: %s", resp.Status)
	}
	if shed, _, _, _ := p.Injected(); shed != 2 {
		t.Fatalf("injected shed = %d, want 2", shed)
	}
}

func TestResetKillsBeforeForwarding(t *testing.T) {
	srv := online.New(online.Config{K: 2})
	p := New(srv.Handler(), Faults{Reset: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if _, err := post(t, ts.URL, "w a 1 0 1\n"); err == nil {
		t.Fatal("reset fault produced a clean response")
	}
	// The backend never saw the request.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if doc := srv.Verdict(); len(doc.Keys) != 0 {
		t.Fatalf("backend ingested through a reset fault: %+v", doc.Keys)
	}
}

func TestDropForwardsHalfThenKills(t *testing.T) {
	srv := online.New(online.Config{K: 2})
	p := New(srv.Handler(), Faults{Drop: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	body := ingestBody(1, 8)
	if _, err := post(t, ts.URL, body); err == nil {
		t.Fatal("drop fault produced a clean response")
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	if len(doc.Keys) != 1 || doc.Keys[0].Ops != 4 {
		t.Fatalf("backend should hold exactly the forwarded half (4 ops): %+v", doc.Keys)
	}
}

func TestTornAppliesFullyButFailsTheClient(t *testing.T) {
	srv := online.New(online.Config{K: 2})
	p := New(srv.Handler(), Faults{Torn: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	body := ingestBody(1, 8)
	resp, err := post(t, ts.URL, body)
	if err == nil {
		// Some transports surface the torn header as a response whose body
		// read fails; either way the client must not see a clean 200 body.
		if _, rerr := io.ReadAll(resp.Body); rerr == nil && resp.StatusCode == http.StatusOK && resp.ContentLength >= 0 {
			t.Fatal("torn fault produced a clean response")
		}
		resp.Body.Close()
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	if len(doc.Keys) != 1 || doc.Keys[0].Ops != 8 {
		t.Fatalf("torn fault must apply the whole batch server-side: %+v", doc.Keys)
	}
}

func TestLatencyAndPassThrough(t *testing.T) {
	srv := online.New(online.Config{K: 2, Stream: trace.StreamOptions{Workers: 1}})
	p := New(srv.Handler(), Faults{Latency: 30 * time.Millisecond})
	ts := httptest.NewServer(p)
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/verdict")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict through proxy: %s", resp.Status)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency shaping not applied: %v", d)
	}
	if p.InjectedTotal() != 0 {
		t.Fatalf("faults injected on a clean config: %d", p.InjectedTotal())
	}
}
