// Package chaosproxy is a fault-injecting HTTP proxy for robustness tests:
// it fronts a real handler (or a reverse proxy to a real server) and spends
// configured budgets of failures against /ingest traffic, exercising every
// ambiguity class a distributed ingest pipeline must survive:
//
//   - shed:  reject with 503 overload before the backend sees the request
//     (the polite transient — retry the same batch)
//   - reset: kill the client connection before forwarding anything (the
//     backend saw nothing, but the client cannot know that)
//   - drop:  forward only the first half of the request body's lines, then
//     kill the client connection with no response (the backend applied an
//     unknown prefix — the reconcile path's reason to exist)
//   - torn:  forward the whole request, then emit a torn response and kill
//     the connection (fully applied, yet the client sees a wire error —
//     the worst ambiguity: blind resend would double-ingest)
//
// plus an optional fixed latency on every proxied request (slow-node
// shaping for deadline and breaker tests). Fault budgets are atomics, so
// concurrent clients draw from them safely; each decrements once per
// injected fault and the proxy passes traffic through cleanly once all
// budgets are spent. Faults apply only to POST /ingest (other endpoints —
// /verdict, /healthz — always pass through, which is what lets retrying
// clients reconcile against the same proxy they ingest through).
//
// This package grew out of the flakyProxy fixture in cmd/kavgen's replay
// tests; promoting it lets the cluster router tests, the replay tests, and
// the cmd/kavchaos smoke-test binary share one fault model.
package chaosproxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"
)

// Faults configures a Proxy's fault budgets and shaping.
type Faults struct {
	// Shed503 is how many /ingest requests to shed with 503 overload.
	Shed503 int
	// Reset is how many /ingest requests to kill before forwarding.
	Reset int
	// Drop is how many /ingest requests to half-forward then kill.
	Drop int
	// Torn is how many /ingest requests to fully forward, then answer with
	// a torn response.
	Torn int
	// Latency is added to every proxied request (all endpoints).
	Latency time.Duration
}

// Proxy fronts backend with fault injection. Create with New; safe for
// concurrent use.
type Proxy struct {
	backend http.Handler
	latency time.Duration

	shed  atomic.Int64
	reset atomic.Int64
	drop  atomic.Int64
	torn  atomic.Int64

	// Injected counts faults actually spent, by kind — tests assert the
	// chaos really happened rather than silently configuring a no-op run.
	injectedShed  atomic.Int64
	injectedReset atomic.Int64
	injectedDrop  atomic.Int64
	injectedTorn  atomic.Int64
}

// New returns a proxy fronting backend with the given fault budgets.
func New(backend http.Handler, f Faults) *Proxy {
	p := &Proxy{backend: backend, latency: f.Latency}
	p.shed.Store(int64(f.Shed503))
	p.reset.Store(int64(f.Reset))
	p.drop.Store(int64(f.Drop))
	p.torn.Store(int64(f.Torn))
	return p
}

// Injected reports the faults spent so far, by kind.
func (p *Proxy) Injected() (shed, reset, drop, torn int64) {
	return p.injectedShed.Load(), p.injectedReset.Load(), p.injectedDrop.Load(), p.injectedTorn.Load()
}

// InjectedTotal reports all faults spent so far.
func (p *Proxy) InjectedTotal() int64 {
	s, r, d, t := p.Injected()
	return s + r + d + t
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.latency > 0 {
		time.Sleep(p.latency)
	}
	if r.Method != http.MethodPost || r.URL.Path != "/ingest" {
		p.backend.ServeHTTP(w, r)
		return
	}
	switch {
	case p.shed.Add(-1) >= 0:
		p.injectedShed.Add(1)
		w.Header().Set("Retry-After", "0")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"code":"overload","error":"chaosproxy: shedding","ingested":0}`)
	case p.reset.Add(-1) >= 0:
		p.injectedReset.Add(1)
		// Nothing reaches the backend; the client's connection just dies.
		hijackClose(w)
	case p.drop.Add(-1) >= 0:
		p.injectedDrop.Add(1)
		body, _ := io.ReadAll(r.Body)
		lines := bytes.SplitAfter(body, []byte("\n"))
		half := bytes.Join(lines[:len(lines)/2], nil)
		// The backend applies the prefix; its response is swallowed and the
		// client connection killed without one — the batch's fate is
		// ambiguous from the client's side.
		req := cloneIngest(r, half)
		p.backend.ServeHTTP(httptest.NewRecorder(), req)
		hijackClose(w)
	case p.torn.Add(-1) >= 0:
		p.injectedTorn.Add(1)
		body, _ := io.ReadAll(r.Body)
		p.backend.ServeHTTP(httptest.NewRecorder(), cloneIngest(r, body))
		// Fully applied server-side, but the client sees a response torn
		// mid-header: a transport error on a request that succeeded.
		conn := hijack(w)
		if conn != nil {
			io.WriteString(conn, "HTTP/1.1 200 OK\r\nContent-Le")
			conn.Close()
		}
	default:
		p.backend.ServeHTTP(w, r)
	}
}

// cloneIngest rebuilds the ingest request with a replacement body, keeping
// the headers (Content-Type negotiates the codec).
func cloneIngest(r *http.Request, body []byte) *http.Request {
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	req.Header = r.Header.Clone()
	return req
}

// hijack takes over the client connection, or returns nil when the
// ResponseWriter cannot hijack (HTTP/2, recorders).
func hijack(w http.ResponseWriter) io.WriteCloser {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaosproxy: response writer cannot hijack (need an HTTP/1 server connection)")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return nil
	}
	return conn
}

func hijackClose(w http.ResponseWriter) {
	if conn := hijack(w); conn != nil {
		conn.Close()
	}
}
