package render

import (
	"strings"
	"testing"

	"kat/internal/fzf"
	"kat/internal/history"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestTimelineBasics(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	var b strings.Builder
	if err := Timeline(&b, p, Options{Width: 40}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "w(1)") || !strings.Contains(out, "r(1)") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "[") || !strings.Contains(out, "]") {
		t.Errorf("interval bars missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two ops + axis
		t.Errorf("lines = %d, want 3:\n%s", len(lines), out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	p, err := history.Prepare(history.New(nil))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Timeline(&b, p, Options{}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("output = %q", b.String())
	}
}

func TestTimelineWitnessAnnotation(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	var b strings.Builder
	if err := Timeline(&b, p, Options{Witness: []int{0, 1}}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if !strings.Contains(b.String(), "#0 in witness") {
		t.Errorf("witness annotation missing:\n%s", b.String())
	}
}

func TestWitnessOrderStaleness(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	res := fzf.Check(p)
	if !res.Atomic {
		t.Fatal("setup: not 2-atomic")
	}
	var b strings.Builder
	if err := WitnessOrder(&b, p, res.Witness); err != nil {
		t.Fatalf("WitnessOrder: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "staleness 1") {
		t.Errorf("stale read not flagged:\n%s", out)
	}
	if !strings.Contains(out, "  1. ") {
		t.Errorf("numbering missing:\n%s", out)
	}
}

func TestWitnessOrderBadIndex(t *testing.T) {
	p := prep(t, "w 1 0 10")
	var b strings.Builder
	if err := WitnessOrder(&b, p, []int{7}); err == nil {
		t.Error("out-of-range witness accepted")
	}
}

func TestViolationHint(t *testing.T) {
	h := history.MustParse("w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70")
	var b strings.Builder
	if err := Violation(&b, h, 2); err != nil {
		t.Fatalf("Violation: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "not 2-atomic") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "2 writes behind") {
		t.Errorf("hint missing:\n%s", out)
	}
}
