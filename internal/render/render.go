// Package render draws histories and witness orders as ASCII timelines for
// humans debugging consistency violations: each operation becomes one row
// with its interval drawn to scale, annotated with kind, value, and (when a
// witness is supplied) its position in the verified total order.
package render

import (
	"fmt"
	"io"
	"strings"

	"kat/internal/history"
)

// Options control rendering.
type Options struct {
	// Width is the number of columns for the time axis (default 60).
	Width int
	// Witness, if non-nil, annotates each operation with its position in
	// this total order (indices into the prepared history's ops).
	Witness []int
}

// Timeline writes an ASCII Gantt chart of the prepared history.
func Timeline(w io.Writer, p *history.Prepared, opts Options) error {
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	n := p.Len()
	if n == 0 {
		_, err := fmt.Fprintln(w, "(empty history)")
		return err
	}
	minT, maxT := p.Op(0).Start, p.Op(0).Finish
	for i := 0; i < n; i++ {
		if s := p.Op(i).Start; s < minT {
			minT = s
		}
		if f := p.Op(i).Finish; f > maxT {
			maxT = f
		}
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	col := func(t int64) int {
		c := int((t - minT) * int64(width-1) / span)
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for idx, op := range opts.Witness {
		if op >= 0 && op < n {
			pos[op] = idx
		}
	}

	// Rows sorted by start time (prepared order).
	for i := 0; i < n; i++ {
		op := p.Op(i)
		line := []byte(strings.Repeat(" ", width))
		lo, hi := col(op.Start), col(op.Finish)
		for c := lo; c <= hi; c++ {
			line[c] = '-'
		}
		line[lo] = '['
		line[hi] = ']'
		label := fmt.Sprintf("%s(%d)", op.Kind, op.Value)
		suffix := ""
		if pos[i] >= 0 {
			suffix = fmt.Sprintf("  #%d in witness", pos[i])
		}
		if _, err := fmt.Fprintf(w, "%8s |%s|%s\n", label, line, suffix); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n", "", axis(minT, maxT, width))
	return err
}

// axis renders the time scale under the chart.
func axis(minT, maxT int64, width int) string {
	left := fmt.Sprintf("%d", minT)
	right := fmt.Sprintf("%d", maxT)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(".", pad) + right
}

// WitnessOrder writes the witness as a numbered list, flagging each read
// with its distance (in writes) from its dictating write.
func WitnessOrder(w io.Writer, p *history.Prepared, order []int) error {
	writesSince := make(map[int]int) // write idx -> writes placed after it
	for i, idx := range order {
		if idx < 0 || idx >= p.Len() {
			return fmt.Errorf("render: op index %d out of range", idx)
		}
		op := p.Op(idx)
		if op.IsWrite() {
			for k := range writesSince {
				writesSince[k]++
			}
			writesSince[idx] = 0
			if _, err := fmt.Fprintf(w, "%3d. %s\n", i+1, op); err != nil {
				return err
			}
			continue
		}
		d := writesSince[p.DictatingWrite[idx]]
		if _, err := fmt.Fprintf(w, "%3d. %s   (staleness %d)\n", i+1, op, d); err != nil {
			return err
		}
	}
	return nil
}

// Violation renders a compact explanation for a non-k-atomic history: the
// minimal core's operations sorted by start time, plus a hint about which
// reads are stale. Callers typically pass a shrunken history.
func Violation(w io.Writer, h *history.History, k int) error {
	cp := h.Clone()
	cp.SortByStart()
	if _, err := fmt.Fprintf(w, "not %d-atomic; %d-op core:\n", k, cp.Len()); err != nil {
		return err
	}
	// Writes in start order, to phrase the staleness hint.
	var writeVals []int64
	for _, op := range cp.Ops {
		if op.IsWrite() {
			writeVals = append(writeVals, op.Value)
		}
	}
	for _, op := range cp.Ops {
		if _, err := fmt.Fprintf(w, "  %s\n", op); err != nil {
			return err
		}
	}
	for _, op := range cp.Ops {
		if !op.IsRead() {
			continue
		}
		idx := -1
		for i, v := range writeVals {
			if v == op.Value {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		if behind := len(writeVals) - 1 - idx; behind >= k {
			if _, err := fmt.Fprintf(w, "hint: read of %d is %d writes behind the last write\n",
				op.Value, behind); err != nil {
				return err
			}
		}
	}
	return nil
}
