package main

import (
	"testing"
	"time"
)

// fakeClock drives a tokenBucket deterministically: now() returns the
// simulated time and sleep() advances it exactly, recording the total.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) install(tb *tokenBucket) {
	tb.now = func() time.Time { return c.t }
	tb.sleep = func(d time.Duration) bool {
		c.t = c.t.Add(d)
		c.slept += d
		return true
	}
	// Rebase the bucket on the fake clock.
	tb.last = c.t
}

// TestTokenBucketHonorsHighRate is the regression test for the saturating
// central-ticker pacer: at 1e6 ops/s the old design could dispense at most
// one token per ticker fire (~1ms floor), capping replay near 1k ops/s.
// The local bucket must pace 100k ops across ~0.1 simulated seconds.
func TestTokenBucketHonorsHighRate(t *testing.T) {
	const rate = 1e6
	grant := grantSize(rate)
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	const ops = 100_000
	for off := 0; off < ops; off += grant {
		n := min(grant, ops-off)
		if !tb.take(n) {
			t.Fatal("take stopped")
		}
	}
	want := time.Duration(float64(ops-2*grant) / rate * float64(time.Second)) // burst goes out free
	// The millisecond sleep floor over-sleeps; the bucket credits it back,
	// so total elapsed stays within one grant of ideal.
	slack := time.Duration(float64(grant)/rate*float64(time.Second)) + 2*time.Millisecond
	if clk.slept < want-slack || clk.slept > want+slack {
		t.Fatalf("paced %d ops at %g/s in %v simulated, want ~%v", ops, float64(rate), clk.slept, want)
	}
}

// TestTokenBucketLowRateGrants checks the other end: at low rates the grant
// collapses to single operations and each op waits its full interval.
func TestTokenBucketLowRateGrants(t *testing.T) {
	const rate = 10.0
	grant := grantSize(rate)
	if grant != 1 {
		t.Fatalf("grant = %d at %g ops/s, want 1", grant, rate)
	}
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	for i := 0; i < 50; i++ {
		if !tb.take(1) {
			t.Fatal("take stopped")
		}
	}
	// 50 ops at 10/s = 5s, minus the 2-token initial burst.
	want := 4800 * time.Millisecond
	if d := clk.slept; d < want-50*time.Millisecond || d > want+50*time.Millisecond {
		t.Fatalf("50 ops at 10/s slept %v, want ~%v", d, want)
	}
}

// TestTokenBucketStops checks a waiting take unblocks (returning false) when
// the pacer's stop channel closes — the writer-goroutine leak guard.
func TestTokenBucketStops(t *testing.T) {
	stop := make(chan struct{})
	tb := newTokenBucket(0.001, 1, stop) // effectively never refills
	tb.tokens = 0                        // burst drained
	done := make(chan bool, 1)
	go func() { done <- tb.take(1) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("take succeeded after stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("take did not observe stop")
	}
}

func TestGrantSizeBounds(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{{1, 1}, {49, 1}, {100, 2}, {1e6, 4096 * 5}, {5e5, 4096 * 2}} {
		got := grantSize(tc.rate)
		if tc.rate >= 2.5e5 {
			if got != 4096 {
				t.Fatalf("grantSize(%g) = %d, want clamp 4096", tc.rate, got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("grantSize(%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
}
