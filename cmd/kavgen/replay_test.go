package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kat/internal/chaosproxy"
	"kat/internal/cluster"
	"kat/internal/online"
)

// fakeClock drives a tokenBucket deterministically: now() returns the
// simulated time and sleep() advances it exactly, recording the total.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) install(tb *tokenBucket) {
	tb.now = func() time.Time { return c.t }
	tb.sleep = func(d time.Duration) bool {
		c.t = c.t.Add(d)
		c.slept += d
		return true
	}
	// Rebase the bucket on the fake clock.
	tb.last = c.t
}

// TestTokenBucketHonorsHighRate is the regression test for the saturating
// central-ticker pacer: at 1e6 ops/s the old design could dispense at most
// one token per ticker fire (~1ms floor), capping replay near 1k ops/s.
// The local bucket must pace 100k ops across ~0.1 simulated seconds.
func TestTokenBucketHonorsHighRate(t *testing.T) {
	const rate = 1e6
	grant := grantSize(rate)
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	const ops = 100_000
	for off := 0; off < ops; off += grant {
		n := min(grant, ops-off)
		if !tb.take(n) {
			t.Fatal("take stopped")
		}
	}
	want := time.Duration(float64(ops-2*grant) / rate * float64(time.Second)) // burst goes out free
	// The millisecond sleep floor over-sleeps; the bucket credits it back,
	// so total elapsed stays within one grant of ideal.
	slack := time.Duration(float64(grant)/rate*float64(time.Second)) + 2*time.Millisecond
	if clk.slept < want-slack || clk.slept > want+slack {
		t.Fatalf("paced %d ops at %g/s in %v simulated, want ~%v", ops, float64(rate), clk.slept, want)
	}
}

// TestTokenBucketLowRateGrants checks the other end: at low rates the grant
// collapses to single operations and each op waits its full interval.
func TestTokenBucketLowRateGrants(t *testing.T) {
	const rate = 10.0
	grant := grantSize(rate)
	if grant != 1 {
		t.Fatalf("grant = %d at %g ops/s, want 1", grant, rate)
	}
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	for i := 0; i < 50; i++ {
		if !tb.take(1) {
			t.Fatal("take stopped")
		}
	}
	// 50 ops at 10/s = 5s, minus the 2-token initial burst.
	want := 4800 * time.Millisecond
	if d := clk.slept; d < want-50*time.Millisecond || d > want+50*time.Millisecond {
		t.Fatalf("50 ops at 10/s slept %v, want ~%v", d, want)
	}
}

// TestTokenBucketStops checks a waiting take unblocks (returning false) when
// the pacer's stop channel closes — the writer-goroutine leak guard.
func TestTokenBucketStops(t *testing.T) {
	stop := make(chan struct{})
	tb := newTokenBucket(0.001, 1, stop) // effectively never refills
	tb.tokens = 0                        // burst drained
	done := make(chan bool, 1)
	go func() { done <- tb.take(1) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("take succeeded after stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("take did not observe stop")
	}
}

// fastRetries shrinks the retry schedule for tests and restores it.
func fastRetries(t *testing.T) {
	t.Helper()
	base, cap := retryBaseDelay, retryMaxDelay
	retryBaseDelay, retryMaxDelay = time.Millisecond, 5*time.Millisecond
	t.Cleanup(func() { retryBaseDelay, retryMaxDelay = base, cap })
}

// writeTrace builds a small keyed all-writes trace: keys k0..k(keys-1),
// opsPerKey writes each, interleaved in arrival order.
func writeTrace(keys, opsPerKey int) (string, int) {
	var b strings.Builder
	for i := 0; i < opsPerKey; i++ {
		for k := 0; k < keys; k++ {
			fmt.Fprintf(&b, "w k%d %d %d %d\n", k, i+1, 2*i, 2*i+1)
		}
	}
	return b.String(), keys * opsPerKey
}

// replayAgainst runs runReplay at full tilt with small batches against h.
// Fault injection comes from internal/chaosproxy (the promoted form of the
// flakyProxy fixture that used to live here).
func replayAgainst(t *testing.T, h http.Handler, text string, batchOps int, resume bool) (string, error) {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	var out strings.Builder
	err := runReplay(ts.URL, []byte(text), replayOpts{
		clients: 2, drain: true, batchOps: batchOps, retries: 8, resume: resume,
	}, &out)
	return out.String(), err
}

// TestReplayRetriesTransient503 checks overload shedding is retried with
// backoff until the batch lands, and nothing is lost or duplicated.
func TestReplayRetriesTransient503(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, chaosproxy.New(srv.Handler(), chaosproxy.Faults{Shed503: 3}), text, 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total, total); !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayReconcilesAfterConnectionDrop kills the connection mid-batch
// after the server applied half of it: the client must reconcile against
// /verdict and resend exactly the unacknowledged suffix — final per-key
// counts are exact, no op ingested twice.
func TestReplayReconcilesAfterConnectionDrop(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, chaosproxy.New(srv.Handler(), chaosproxy.Faults{Drop: 2}), text, 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total, total); !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayReconcilesAfterTornResponse covers the worst ambiguity class:
// the server applied the whole batch but the response died on the wire. A
// blind resend would double-ingest; reconciliation must detect the batch
// already landed and move on.
func TestReplayReconcilesAfterTornResponse(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, chaosproxy.New(srv.Handler(), chaosproxy.Faults{Torn: 2}), text, 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total, total); !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayDrainingIsTerminal: a drained server must stop the replay with
// an error, not burn retries.
func TestReplayDrainingIsTerminal(t *testing.T) {
	fastRetries(t)
	srv := online.New(online.Config{K: 2})
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	text, _ := writeTrace(2, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out strings.Builder
	err := runReplay(ts.URL, []byte(text), replayOpts{clients: 1, batchOps: 4, retries: 8}, &out)
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("replay against drained server: err=%v, want draining", err)
	}
}

// TestReplayResume pre-loads the server with a prefix of the trace, then
// replays the whole trace with -resume: only the missing suffix is sent.
func TestReplayResume(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	prefix := strings.Join(lines[:len(lines)/3], "")
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload: %s", resp.Status)
	}
	var out strings.Builder
	if err := runReplay(ts.URL, []byte(text), replayOpts{
		clients: 2, drain: true, batchOps: 16, retries: 8, resume: true,
	}, &out); err != nil {
		t.Fatalf("resume replay: %v\n%s", err, out.String())
	}
	preloaded := len(lines) / 3
	if want := fmt.Sprintf("server already holds %d", preloaded); !strings.Contains(out.String(), want) {
		t.Fatalf("missing %q:\n%s", want, out.String())
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total-preloaded, total); !strings.Contains(out.String(), want) {
		t.Fatalf("missing %q:\n%s", want, out.String())
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayNodeListPreRoutes replays against a comma-separated node list:
// lines pre-route by the cluster key hash so every key lands wholly on its
// partition owner, the nodes drain together, and one merged cluster
// verdict is printed.
func TestReplayNodeListPreRoutes(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(9, 10)
	var servers []*online.Server
	var urls []string
	for i := 0; i < 3; i++ {
		srv := online.New(online.Config{K: 2})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
	}
	var out strings.Builder
	err := runReplay(strings.Join(urls, ","), []byte(text), replayOpts{
		clients: 6, drain: true, batchOps: 16, retries: 8,
	}, &out)
	if err != nil {
		t.Fatalf("cluster replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cluster (3 nodes): final") {
		t.Fatalf("missing merged cluster verdict:\n%s", out.String())
	}
	part, err := cluster.NewPartition(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for i, srv := range servers {
		for _, ks := range srv.Verdict().Keys {
			if owner := part.OwnerString(ks.Key); owner != i {
				t.Fatalf("key %s on node %d, owner is %d", ks.Key, i, owner)
			}
			if ks.Ops != 10 {
				t.Fatalf("key %s has %d ops, want 10", ks.Key, ks.Ops)
			}
			seen += ks.Ops
		}
	}
	if seen != total {
		t.Fatalf("cluster holds %d ops, want %d", seen, total)
	}
}

// TestReplayNodeListSplitsMultiOpLines: the trace grammar allows
// ';'-separated multi-op lines mixing keys. Pre-routing such a line whole
// would send every op to the first op's owner; the replay must split per
// operation so each op lands on its own key's partition owner.
func TestReplayNodeListSplitsMultiOpLines(t *testing.T) {
	fastRetries(t)
	part, err := cluster.NewPartition(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pair two keys with different owners on every line, so whole-line
	// routing would provably misplace the second key's ops.
	keyA, keyB := "k0", ""
	for i := 1; i < 64 && keyB == ""; i++ {
		if k := fmt.Sprintf("k%d", i); part.OwnerString(k) != part.OwnerString(keyA) {
			keyB = k
		}
	}
	if keyB == "" {
		t.Fatal("no key in k1..k63 with a different owner than k0")
	}
	var b strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "w %s %d %d %d; w %s %d %d %d\n", keyA, i+1, 2*i, 2*i+1, keyB, i+1, 2*i, 2*i+1)
	}
	var servers []*online.Server
	var urls []string
	for i := 0; i < 3; i++ {
		srv := online.New(online.Config{K: 2})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
	}
	var out strings.Builder
	if err := runReplay(strings.Join(urls, ","), []byte(b.String()), replayOpts{
		clients: 3, drain: true, batchOps: 8, retries: 8,
	}, &out); err != nil {
		t.Fatalf("cluster replay: %v\n%s", err, out.String())
	}
	got := map[string]int{}
	for i, srv := range servers {
		for _, ks := range srv.Verdict().Keys {
			if owner := part.OwnerString(ks.Key); owner != i {
				t.Fatalf("key %s on node %d, owner is %d", ks.Key, i, owner)
			}
			got[ks.Key] += ks.Ops
		}
	}
	if len(got) != 2 || got[keyA] != 10 || got[keyB] != 10 {
		t.Fatalf("per-key ops = %v, want %s:10 %s:10", got, keyA, keyB)
	}
}

// TestReplayMultiOpLinesReconcileExactly: multi-op lines also break the
// single-node path if routed whole — a key's ops could ride two connection
// buckets (ordering) and one line can hold several server-side ops (ack
// arithmetic). Normalized per-op routing must keep counts exact even when
// drops and torn responses force /verdict reconciles.
func TestReplayMultiOpLinesReconcileExactly(t *testing.T) {
	fastRetries(t)
	var b strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "w k0 %d %d %d; w k1 %d %d %d; w k0 %d %d %d\n",
			i+1, 4*i, 4*i+1, i+1, 4*i, 4*i+1, i+100, 4*i+2, 4*i+3)
	}
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, chaosproxy.New(srv.Handler(), chaosproxy.Faults{Drop: 2, Torn: 2}), b.String(), 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "replayed 60/60 ops") {
		t.Fatalf("missing exact op accounting:\n%s", out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 40, "k1": 20})
}

// degradedOnce fronts an online server like a cluster router under partial
// failure: the first /ingest applies only the batch's even-keyed lines (a
// non-prefix subset, exactly what a per-node split produces) and answers
// 503 code "degraded". A client that prefix-trimmed by Ingested would
// corrupt the stream; the reconcile path must resend exactly the odd-keyed
// lines.
type degradedOnce struct {
	backend http.Handler
	fired   atomic.Bool
}

func (p *degradedOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/ingest" || !p.fired.CompareAndSwap(false, true) {
		p.backend.ServeHTTP(w, r)
		return
	}
	body, _ := io.ReadAll(r.Body)
	var healthy []byte
	applied := 0
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[1][len(fields[1])-1]%2 == 0 {
			healthy = append(healthy, line...)
			healthy = append(healthy, '\n')
			applied++
		}
	}
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(healthy)))
	req.Header = r.Header.Clone()
	p.backend.ServeHTTP(httptest.NewRecorder(), req)
	w.Header().Set("Retry-After", "0")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"code":"degraded","error":"test: slice down","ingested":%d}`, applied)
}

func TestReplayDegradedReconcilesWithoutPrefixTrim(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(4, 12) // keys k0..k3: k0/k2 "healthy", k1/k3 degraded
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, &degradedOnce{backend: srv.Handler()}, text, total, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 12, "k1": 12, "k2": 12, "k3": 12})
}

// assertServerOps drains srv and checks exact per-key ingested-op counts.
func assertServerOps(t *testing.T, srv *online.Server, want map[string]int) {
	t.Helper()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	got := map[string]int{}
	for _, ks := range doc.Keys {
		got[ks.Key] = ks.Ops
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("key %s has %d ops, want %d (all: %v)", key, got[key], n, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("server has keys %v, want %v", got, want)
	}
}

func TestGrantSizeBounds(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{{1, 1}, {49, 1}, {100, 2}, {1e6, 4096 * 5}, {5e5, 4096 * 2}} {
		got := grantSize(tc.rate)
		if tc.rate >= 2.5e5 {
			if got != 4096 {
				t.Fatalf("grantSize(%g) = %d, want clamp 4096", tc.rate, got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("grantSize(%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
}
