package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kat/internal/online"
)

// fakeClock drives a tokenBucket deterministically: now() returns the
// simulated time and sleep() advances it exactly, recording the total.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) install(tb *tokenBucket) {
	tb.now = func() time.Time { return c.t }
	tb.sleep = func(d time.Duration) bool {
		c.t = c.t.Add(d)
		c.slept += d
		return true
	}
	// Rebase the bucket on the fake clock.
	tb.last = c.t
}

// TestTokenBucketHonorsHighRate is the regression test for the saturating
// central-ticker pacer: at 1e6 ops/s the old design could dispense at most
// one token per ticker fire (~1ms floor), capping replay near 1k ops/s.
// The local bucket must pace 100k ops across ~0.1 simulated seconds.
func TestTokenBucketHonorsHighRate(t *testing.T) {
	const rate = 1e6
	grant := grantSize(rate)
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	const ops = 100_000
	for off := 0; off < ops; off += grant {
		n := min(grant, ops-off)
		if !tb.take(n) {
			t.Fatal("take stopped")
		}
	}
	want := time.Duration(float64(ops-2*grant) / rate * float64(time.Second)) // burst goes out free
	// The millisecond sleep floor over-sleeps; the bucket credits it back,
	// so total elapsed stays within one grant of ideal.
	slack := time.Duration(float64(grant)/rate*float64(time.Second)) + 2*time.Millisecond
	if clk.slept < want-slack || clk.slept > want+slack {
		t.Fatalf("paced %d ops at %g/s in %v simulated, want ~%v", ops, float64(rate), clk.slept, want)
	}
}

// TestTokenBucketLowRateGrants checks the other end: at low rates the grant
// collapses to single operations and each op waits its full interval.
func TestTokenBucketLowRateGrants(t *testing.T) {
	const rate = 10.0
	grant := grantSize(rate)
	if grant != 1 {
		t.Fatalf("grant = %d at %g ops/s, want 1", grant, rate)
	}
	tb := newTokenBucket(rate, grant, nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	clk.install(tb)
	for i := 0; i < 50; i++ {
		if !tb.take(1) {
			t.Fatal("take stopped")
		}
	}
	// 50 ops at 10/s = 5s, minus the 2-token initial burst.
	want := 4800 * time.Millisecond
	if d := clk.slept; d < want-50*time.Millisecond || d > want+50*time.Millisecond {
		t.Fatalf("50 ops at 10/s slept %v, want ~%v", d, want)
	}
}

// TestTokenBucketStops checks a waiting take unblocks (returning false) when
// the pacer's stop channel closes — the writer-goroutine leak guard.
func TestTokenBucketStops(t *testing.T) {
	stop := make(chan struct{})
	tb := newTokenBucket(0.001, 1, stop) // effectively never refills
	tb.tokens = 0                        // burst drained
	done := make(chan bool, 1)
	go func() { done <- tb.take(1) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("take succeeded after stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("take did not observe stop")
	}
}

// fastRetries shrinks the retry schedule for tests and restores it.
func fastRetries(t *testing.T) {
	t.Helper()
	base, cap := retryBaseDelay, retryMaxDelay
	retryBaseDelay, retryMaxDelay = time.Millisecond, 5*time.Millisecond
	t.Cleanup(func() { retryBaseDelay, retryMaxDelay = base, cap })
}

// writeTrace builds a small keyed all-writes trace: keys k0..k(keys-1),
// opsPerKey writes each, interleaved in arrival order.
func writeTrace(keys, opsPerKey int) (string, int) {
	var b strings.Builder
	for i := 0; i < opsPerKey; i++ {
		for k := 0; k < keys; k++ {
			fmt.Fprintf(&b, "w k%d %d %d %d\n", k, i+1, 2*i, 2*i+1)
		}
	}
	return b.String(), keys * opsPerKey
}

// flakyProxy fronts a real online.Server handler. The first `fail503`
// /ingest requests are shed with 503 overload before the backend sees them;
// the first `failDrop` /ingest requests forward only the first half of their
// lines to the backend and then kill the client connection without a
// response — the ambiguous partial-apply crash the reconcile path exists
// for. Everything else passes through. The fault budgets are atomics:
// replay clients hit the proxy from concurrent server goroutines.
type flakyProxy struct {
	backend  http.Handler
	fail503  atomic.Int64
	failDrop atomic.Int64
}

func newFlakyProxy(backend http.Handler, fail503, failDrop int) *flakyProxy {
	p := &flakyProxy{backend: backend}
	p.fail503.Store(int64(fail503))
	p.failDrop.Store(int64(failDrop))
	return p
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/ingest" {
		p.backend.ServeHTTP(w, r)
		return
	}
	if p.fail503.Add(-1) >= 0 {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"code":"overload","error":"shedding","ingested":0}`)
		return
	}
	if p.failDrop.Add(-1) >= 0 {
		body, _ := io.ReadAll(r.Body)
		lines := bytes.SplitAfter(body, []byte("\n"))
		half := bytes.Join(lines[:len(lines)/2], nil)
		req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(half))
		p.backend.ServeHTTP(httptest.NewRecorder(), req)
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("recorder cannot hijack")
		}
		conn, _, _ := hj.Hijack()
		conn.Close() // no response: the batch's fate is ambiguous
		return
	}
	p.backend.ServeHTTP(w, r)
}

// replayAgainst runs runReplay at full tilt with small batches against h.
func replayAgainst(t *testing.T, h http.Handler, text string, batchOps int, resume bool) (string, error) {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	var out strings.Builder
	err := runReplay(ts.URL, []byte(text), replayOpts{
		clients: 2, drain: true, batchOps: batchOps, retries: 8, resume: resume,
	}, &out)
	return out.String(), err
}

// TestReplayRetriesTransient503 checks overload shedding is retried with
// backoff until the batch lands, and nothing is lost or duplicated.
func TestReplayRetriesTransient503(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, newFlakyProxy(srv.Handler(), 3, 0), text, 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total, total); !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayReconcilesAfterConnectionDrop kills the connection mid-batch
// after the server applied half of it: the client must reconcile against
// /verdict and resend exactly the unacknowledged suffix — final per-key
// counts are exact, no op ingested twice.
func TestReplayReconcilesAfterConnectionDrop(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	out, err := replayAgainst(t, newFlakyProxy(srv.Handler(), 0, 2), text, 16, false)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total, total); !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// TestReplayDrainingIsTerminal: a drained server must stop the replay with
// an error, not burn retries.
func TestReplayDrainingIsTerminal(t *testing.T) {
	fastRetries(t)
	srv := online.New(online.Config{K: 2})
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	text, _ := writeTrace(2, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out strings.Builder
	err := runReplay(ts.URL, []byte(text), replayOpts{clients: 1, batchOps: 4, retries: 8}, &out)
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("replay against drained server: err=%v, want draining", err)
	}
}

// TestReplayResume pre-loads the server with a prefix of the trace, then
// replays the whole trace with -resume: only the missing suffix is sent.
func TestReplayResume(t *testing.T) {
	fastRetries(t)
	text, total := writeTrace(3, 20)
	srv := online.New(online.Config{K: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	prefix := strings.Join(lines[:len(lines)/3], "")
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload: %s", resp.Status)
	}
	var out strings.Builder
	if err := runReplay(ts.URL, []byte(text), replayOpts{
		clients: 2, drain: true, batchOps: 16, retries: 8, resume: true,
	}, &out); err != nil {
		t.Fatalf("resume replay: %v\n%s", err, out.String())
	}
	preloaded := len(lines) / 3
	if want := fmt.Sprintf("server already holds %d", preloaded); !strings.Contains(out.String(), want) {
		t.Fatalf("missing %q:\n%s", want, out.String())
	}
	if want := fmt.Sprintf("replayed %d/%d ops", total-preloaded, total); !strings.Contains(out.String(), want) {
		t.Fatalf("missing %q:\n%s", want, out.String())
	}
	assertServerOps(t, srv, map[string]int{"k0": 20, "k1": 20, "k2": 20})
}

// assertServerOps drains srv and checks exact per-key ingested-op counts.
func assertServerOps(t *testing.T, srv *online.Server, want map[string]int) {
	t.Helper()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	got := map[string]int{}
	for _, ks := range doc.Keys {
		got[ks.Key] = ks.Ops
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("key %s has %d ops, want %d (all: %v)", key, got[key], n, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("server has keys %v, want %v", got, want)
	}
}

func TestGrantSizeBounds(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{{1, 1}, {49, 1}, {100, 2}, {1e6, 4096 * 5}, {5e5, 4096 * 2}} {
		got := grantSize(tc.rate)
		if tc.rate >= 2.5e5 {
			if got != 4096 {
				t.Fatalf("grantSize(%g) = %d, want clamp 4096", tc.rate, got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("grantSize(%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
}
