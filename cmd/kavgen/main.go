// Command kavgen generates synthetic histories for testing k-atomicity
// checkers.
//
// Usage:
//
//	kavgen -kind katomic -ops 1000 -depth 1 -concurrency 4 > trace.txt
//	kavgen -kind random -ops 200 -seed 7 > fuzz.txt
//	kavgen -kind katomic -ops 500 -inject 0.3 -inject-depth 3 > stale.txt
//	kavgen -keys 64 -ops 1000 -depth 1 | kavcheck -k 2 -stream -
//	kavgen -keys 64 -ops 1000 -zipf 1.3 | kavcheck -k 2 -stream -workers 4 -
//	kavgen -keys 64 -ops 500 -replay http://localhost:8080 -clients 32 -drain
//
// With -keys N the output is a keyed multi-register trace, one generated
// register per key, serialized in operation arrival order — ready to pipe
// into the streaming verifier. -zipf s (s > 1) skews the per-key operation
// counts Zipfian while preserving the total, producing the hot-key traffic
// shape that exercises chunk-level (intra-key) parallel verification.
// -format wire serializes the same trace as binary wire frames instead of
// text (-compress DEFLATEs the payloads); kavcheck -stream and kavserve
// sniff the format, so binary traces drop into the same pipelines.
//
// With -churn N the keyspace itself churns: N key lifetimes are born at a
// fixed cadence, each lives -ops operations, then quiesces forever — the
// workload that exercises kavserve's quiescent-key retirement.
// -churn-pool P recycles P names so retired keys are reborn (re-admission
// path); -no-quiesce flips to the adversarial memory-pressure variant
// whose chain-overlapping intervals never quiesce:
//
//	kavgen -churn 10000 -ops 32 -churn-pool 64 > churn.txt
//	kavgen -churn 4 -ops 100000 -no-quiesce -replay http://localhost:8080
//
// With -replay URL the trace — generated with the flags above, or read from
// a positional file ("-" for stdin) — is replayed against a kavserve /ingest
// endpoint instead of printed: operations are partitioned over -clients
// concurrent connections by key hash (so each key's operations arrive in
// order from one connection, as the server requires), sent in -batch-ops
// acknowledged batches, optionally paced to an aggregate -rate operations
// per second. Transient failures (connection drops, 503 shedding) retry with
// exponential backoff and jitter, reconciling against /verdict so no op is
// ingested twice; -resume continues an interrupted replay the same way.
// -wire posts each batch as one binary wire frame instead of text, halving
// (or better) the bytes on the wire and skipping the server-side parse.
// -drain then asks the server for final verdicts and prints them.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"kat"
)

// openInput resolves a trace-file argument: a path, or "-" for stdin.
func openInput(arg string) (io.ReadCloser, error) {
	if arg == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(arg)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavgen", flag.ContinueOnError)
	var (
		kind        = fs.String("kind", "katomic", "generator: katomic|random|trap")
		ops         = fs.Int("ops", 100, "number of operations")
		chain       = fs.Int("chain", 100, "trap: staircase length")
		goods       = fs.Int("goods", 10, "trap: number of instantly-succeeding writes")
		seed        = fs.Int64("seed", 1, "PRNG seed")
		conc        = fs.Int("concurrency", 2, "approximate operation overlap")
		readFrac    = fs.Float64("read-fraction", 0.5, "fraction of reads")
		depth       = fs.Int("depth", 0, "staleness depth (katomic: history is depth+1-atomic)")
		forceDepth  = fs.Bool("force-depth", false, "force at least one read at exactly -depth")
		inject      = fs.Float64("inject", 0, "fraction of reads to redirect to older writes")
		injectDepth = fs.Int("inject-depth", 1, "how many writes back injected reads go")
		keys        = fs.Int("keys", 0, "emit a keyed trace with this many registers (-ops each), in arrival order")
		zipf        = fs.Float64("zipf", 0, "with -keys: skew the per-key operation counts Zipfian with this exponent (> 1; total ops stays keys*ops, rank-0 key hottest)")
		asJSON      = fs.Bool("json", false, "emit JSON instead of text")
		format      = fs.String("format", "text", "with -keys: trace serialization, text|wire (binary frames; kavcheck -stream and kavserve sniff the format)")
		frameOps    = fs.Int("frame-ops", 0, "with -format wire: operations per frame (0 = default)")
		compress    = fs.Bool("compress", false, "with -format wire: DEFLATE-compress frame payloads")
		replay      = fs.String("replay", "", "replay the trace against this kavserve base URL instead of printing it; a comma-separated URL list pre-routes per key hash across cluster member nodes (bypassing the router)")
		clients     = fs.Int("clients", 8, "with -replay: number of concurrent ingest connections")
		rate        = fs.Float64("rate", 0, "with -replay: aggregate operations per second (0 = unlimited)")
		drain       = fs.Bool("drain", false, "with -replay: drain the server afterwards and print its final verdicts")
		batchOps    = fs.Int("batch-ops", 512, "with -replay: operations per acknowledged ingest request; a key's next batch never leaves before the previous one is acked")
		retries     = fs.Int("retries", 8, "with -replay: attempts per batch before giving up (transient failures back off exponentially with jitter, honoring Retry-After)")
		resume      = fs.Bool("resume", false, "with -replay: reconcile against the server's /verdict first and skip per-key prefixes it already ingested (continue an interrupted replay)")
		wireMode    = fs.Bool("wire", false, "with -replay: post batches as binary wire frames (Content-Type application/x-kav-wire) instead of text")
		churn       = fs.Int("churn", 0, "churn mode: emit a keyed trace of this many key lifetimes born at a fixed cadence, each living -ops operations and then quiescing forever (the keyspace-lifecycle workload)")
		churnPool   = fs.Int("churn-pool", 0, "with -churn: recycle this many key names round-robin, so retired names are later reborn and re-admitted (0 = fresh name per lifetime)")
		churnGap    = fs.Int64("churn-gap", 0, "with -churn: trace-time between lifetime births (0 = auto)")
		noQuiesce   = fs.Bool("no-quiesce", false, "with -churn: adversarial variant — chain-overlapping write intervals so keys never quiesce; a verifier without memory watermarks grows without bound on this trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *zipf != 0 {
		if *keys <= 0 {
			return fmt.Errorf("-zipf requires -keys")
		}
		if *zipf <= 1 {
			return fmt.Errorf("-zipf exponent must be > 1, got %v", *zipf)
		}
	}
	if *format != "text" && *format != "wire" {
		return fmt.Errorf("unknown format %q (want text or wire)", *format)
	}
	if *format == "wire" {
		if *replay != "" {
			return fmt.Errorf("-format wire does not apply to -replay; use -wire to post binary frames")
		}
		if *keys <= 0 && *churn <= 0 {
			return fmt.Errorf("-format wire requires -keys or -churn (binary frames carry keyed traces)")
		}
	}
	if *churn > 0 && (*keys > 0 || *zipf != 0) {
		return fmt.Errorf("-churn and -keys/-zipf are mutually exclusive (churn shapes the keyspace itself)")
	}
	if *noQuiesce && *churn <= 0 {
		return fmt.Errorf("-no-quiesce requires -churn")
	}

	cfg := kat.GenConfig{
		Seed: *seed, Ops: *ops, Concurrency: *conc,
		ReadFraction: *readFrac, StalenessDepth: *depth, ForceDepth: *forceDepth,
	}
	generate := func(cfg kat.GenConfig) (*kat.History, error) {
		var h *kat.History
		switch *kind {
		case "katomic":
			h = kat.GenerateKAtomic(cfg)
		case "random":
			h = kat.GenerateRandom(cfg)
		case "trap":
			h = kat.GenerateLBTTrap(*chain, *goods)
		default:
			return nil, fmt.Errorf("unknown kind %q", *kind)
		}
		if *inject > 0 {
			h = kat.InjectStaleness(h, cfg.Seed+1, *inject, *injectDepth)
		}
		return h, nil
	}

	// genKeyed builds the multi-register trace: uniform per-key op counts by
	// default; -zipf skews them so the trace exercises the hot-key path of
	// the (key, chunk) scheduler.
	genKeyed := func() (*kat.Trace, error) {
		counts := make([]int, *keys)
		for i := range counts {
			counts[i] = *ops
		}
		if *zipf > 1 {
			counts = kat.ZipfKeyCounts(*seed, *keys, *keys**ops, *zipf)
		}
		tr := kat.NewTrace()
		for i := 0; i < *keys; i++ {
			if counts[i] == 0 {
				continue
			}
			kcfg := cfg
			kcfg.Seed = *seed + int64(i)
			kcfg.Ops = counts[i]
			h, err := generate(kcfg)
			if err != nil {
				return nil, err
			}
			for _, op := range h.Ops {
				tr.Add(fmt.Sprintf("key-%04d", i), op)
			}
		}
		return tr, nil
	}

	// genTrace resolves the keyed-trace source: -churn workload or the
	// uniform/Zipfian -keys registers.
	genTrace := func() (*kat.Trace, error) {
		if *churn > 0 {
			return kat.GenerateChurn(kat.ChurnConfig{
				Seed: *seed, Lifetimes: *churn, OpsPerLifetime: *ops,
				Concurrency: *conc, ReadFraction: *readFrac,
				NamePool: *churnPool, Gap: *churnGap, NoQuiesce: *noQuiesce,
			}), nil
		}
		return genKeyed()
	}

	if *replay != "" {
		if *asJSON {
			return fmt.Errorf("-replay and -json are mutually exclusive")
		}
		var text bytes.Buffer
		if fs.NArg() > 0 {
			in, err := openInput(fs.Args()[0])
			if err != nil {
				return err
			}
			defer in.Close()
			if _, err := io.Copy(&text, in); err != nil {
				return err
			}
		} else {
			if *keys <= 0 && *churn <= 0 {
				return fmt.Errorf("-replay needs -keys N or -churn N (generated trace) or a trace file argument")
			}
			tr, err := genTrace()
			if err != nil {
				return err
			}
			if err := kat.WriteTraceArrivalOrder(&text, tr); err != nil {
				return err
			}
		}
		return runReplay(*replay, text.Bytes(), replayOpts{
			clients:  *clients,
			rate:     *rate,
			drain:    *drain,
			batchOps: *batchOps,
			retries:  *retries,
			resume:   *resume,
			wire:     *wireMode,
		}, out)
	}

	if *keys > 0 || *churn > 0 {
		if *asJSON {
			return fmt.Errorf("-keys/-churn and -json are mutually exclusive")
		}
		tr, err := genTrace()
		if err != nil {
			return err
		}
		if *format == "wire" {
			return kat.WriteTraceWireArrivalOrder(out, tr, *frameOps, *compress)
		}
		return kat.WriteTraceArrivalOrder(out, tr)
	}

	h, err := generate(cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := h.MarshalJSON()
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	}
	_, err = io.WriteString(out, h.String())
	return err
}
