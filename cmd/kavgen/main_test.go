package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kat"
	"kat/internal/online"
	"kat/internal/trace"
)

func TestGenKAtomic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "katomic", "-ops", "50", "-depth", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	h, err := kat.Parse(out.String())
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	rep, err := kat.Check(h, 2, kat.Options{})
	if err != nil || !rep.Atomic {
		t.Errorf("generated history not 2-atomic: %v %+v", err, rep)
	}
}

func TestGenRandom(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "random", "-ops", "30", "-seed", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := kat.Parse(out.String()); err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
}

func TestGenInject(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-kind", "katomic", "-ops", "60", "-inject", "1.0", "-inject-depth", "3"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	h, err := kat.Parse(out.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	k, err := kat.SmallestK(h, kat.Options{})
	if err != nil {
		t.Fatalf("SmallestK: %v", err)
	}
	if k < 2 {
		t.Errorf("full injection left k=%d", k)
	}
}

func TestGenJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "katomic", "-ops", "10", "-json"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var h kat.History
	if err := h.UnmarshalJSON([]byte(out.String())); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if h.Len() == 0 {
		t.Error("empty JSON history")
	}
}

func TestGenUnknownKind(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "bogus"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenTrap(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "trap", "-chain", "8", "-goods", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	h, err := kat.Parse(out.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep, err := kat.Check(h, 2, kat.Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Atomic {
		t.Error("trap history should not be 2-atomic")
	}
}

func TestGenerateKeyedTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-keys", "5", "-ops", "30", "-depth", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := kat.ParseTrace(out.String())
	if err != nil {
		t.Fatalf("keyed output does not parse: %v", err)
	}
	if len(tr.Keys) != 5 {
		t.Fatalf("got %d keys, want 5", len(tr.Keys))
	}
	// Arrival order: the streaming verifier must accept the output.
	rep, _, err := kat.StreamCheckTrace(strings.NewReader(out.String()), 2,
		kat.Options{}, kat.StreamOptions{})
	if err != nil {
		t.Fatalf("StreamCheckTrace: %v", err)
	}
	if !rep.Atomic() {
		t.Fatalf("generated depth-1 trace not 2-atomic: %v", rep.FailingKeys())
	}
	if err := run([]string{"-keys", "2", "-json"}, &out); err == nil {
		t.Error("-keys -json accepted")
	}
}

func TestGenerateZipfTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-keys", "8", "-ops", "50", "-depth", "1", "-zipf", "1.4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := kat.ParseTrace(out.String())
	if err != nil {
		t.Fatalf("zipf output does not parse: %v", err)
	}
	if tr.Len() != 8*50 {
		t.Fatalf("zipf trace has %d ops, want %d (skew must preserve the total)", tr.Len(), 8*50)
	}
	// The rank-0 key must be hotter than a uniform share — the whole point
	// of the skew — and the trace must still verify through the stream.
	hottest := 0
	for _, h := range tr.Keys {
		if h.Len() > hottest {
			hottest = h.Len()
		}
	}
	if hottest <= 50 {
		t.Fatalf("hottest key has %d ops; expected a hot key above the uniform 50", hottest)
	}
	rep, _, err := kat.StreamCheckTrace(strings.NewReader(out.String()), 2,
		kat.Options{}, kat.StreamOptions{})
	if err != nil {
		t.Fatalf("StreamCheckTrace: %v", err)
	}
	if !rep.Atomic() {
		t.Fatalf("generated zipf trace not 2-atomic: %v", rep.FailingKeys())
	}
}

func TestZipfFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-zipf", "1.2"}, &out); err == nil {
		t.Error("-zipf without -keys accepted")
	}
	if err := run([]string{"-keys", "4", "-zipf", "0.9"}, &out); err == nil {
		t.Error("-zipf <= 1 accepted")
	}
}

func TestReplayAgainstServer(t *testing.T) {
	srv := online.New(online.Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 4}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	genArgs := []string{"-keys", "6", "-ops", "40", "-depth", "1", "-inject", "0.5", "-inject-depth", "2", "-seed", "3"}
	var replayOut strings.Builder
	args := append(append([]string{}, genArgs...),
		"-replay", ts.URL, "-clients", "5", "-rate", "50000", "-drain")
	if err := run(args, &replayOut); err != nil {
		t.Fatalf("replay run: %v\n%s", err, replayOut.String())
	}
	if !strings.Contains(replayOut.String(), "final verdicts") {
		t.Fatalf("replay output missing drained verdicts:\n%s", replayOut.String())
	}

	// The drained server must agree with the offline checker on the very
	// same generated trace.
	var genOut strings.Builder
	if err := run(genArgs, &genOut); err != nil {
		t.Fatalf("gen run: %v", err)
	}
	tr, err := kat.ParseTrace(genOut.String())
	if err != nil {
		t.Fatal(err)
	}
	for key, wantK := range kat.SmallestKByKey(tr, kat.Options{}) {
		line := fmt.Sprintf("key %-12s %6d ops  smallest k: %d", key, tr.Keys[key].Len(), wantK)
		if !strings.Contains(replayOut.String(), line) {
			t.Fatalf("replay verdicts missing %q:\n%s", line, replayOut.String())
		}
	}
}

func TestReplayFromFile(t *testing.T) {
	srv := online.New(online.Config{Stream: trace.StreamOptions{Workers: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	var gen strings.Builder
	if err := run([]string{"-keys", "3", "-ops", "20"}, &gen); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(gen.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-replay", ts.URL, "-clients", "2", path}, &out); err != nil {
		t.Fatalf("replay from file: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "live verdicts") {
		t.Fatalf("undrained replay should print live verdicts:\n%s", out.String())
	}
}

func TestReplayFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-replay", "http://x", "-json"}, &out); err == nil {
		t.Error("-replay -json accepted")
	}
	if err := run([]string{"-replay", "http://x"}, &out); err == nil {
		t.Error("-replay without -keys or file accepted")
	}
}

// TestGenerateWireTrace proves -format wire emits a binary stream the
// format-sniffing streaming readers verify to the same verdicts as the text
// rendering of the same generated trace.
func TestGenerateWireTrace(t *testing.T) {
	genArgs := []string{"-keys", "4", "-ops", "30", "-depth", "1", "-inject", "0.4", "-seed", "7"}
	var text strings.Builder
	if err := run(genArgs, &text); err != nil {
		t.Fatal(err)
	}
	wantKs, _, err := kat.StreamSmallestKByKey(strings.NewReader(text.String()), kat.Options{}, kat.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-format", "wire"},
		{"-format", "wire", "-compress", "-frame-ops", "16"},
	} {
		var bin bytes.Buffer
		if err := run(append(append([]string{}, genArgs...), extra...), &bin); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if bytes.Equal(bin.Bytes(), []byte(text.String())) {
			t.Fatal("-format wire emitted the text rendering")
		}
		gotKs, _, err := kat.StreamSmallestKByKey(bytes.NewReader(bin.Bytes()), kat.Options{}, kat.StreamOptions{})
		if err != nil {
			t.Fatalf("%v: binary stream did not verify: %v", extra, err)
		}
		if fmt.Sprint(gotKs) != fmt.Sprint(wantKs) {
			t.Fatalf("%v: wire verdicts %v, want %v", extra, gotKs, wantKs)
		}
	}
}

func TestWireFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", "yaml"}, &out); err == nil {
		t.Error("unknown -format accepted")
	}
	if err := run([]string{"-format", "wire"}, &out); err == nil {
		t.Error("-format wire without -keys accepted")
	}
	if err := run([]string{"-format", "wire", "-keys", "2", "-replay", "http://x"}, &out); err == nil {
		t.Error("-format wire with -replay accepted")
	}
}

// TestReplayWire replays a generated trace as binary wire frames and checks
// the drained server agrees with the offline checker — the -wire twin of
// TestReplayAgainstServer.
func TestReplayWire(t *testing.T) {
	srv := online.New(online.Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 4}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	genArgs := []string{"-keys", "5", "-ops", "40", "-depth", "1", "-inject", "0.5", "-inject-depth", "2", "-seed", "11"}
	var replayOut strings.Builder
	args := append(append([]string{}, genArgs...),
		"-replay", ts.URL, "-clients", "3", "-batch-ops", "32", "-wire", "-drain")
	if err := run(args, &replayOut); err != nil {
		t.Fatalf("wire replay run: %v\n%s", err, replayOut.String())
	}

	var genOut strings.Builder
	if err := run(genArgs, &genOut); err != nil {
		t.Fatal(err)
	}
	tr, err := kat.ParseTrace(genOut.String())
	if err != nil {
		t.Fatal(err)
	}
	for key, wantK := range kat.SmallestKByKey(tr, kat.Options{}) {
		line := fmt.Sprintf("key %-12s %6d ops  smallest k: %d", key, tr.Keys[key].Len(), wantK)
		if !strings.Contains(replayOut.String(), line) {
			t.Fatalf("wire replay verdicts missing %q:\n%s", line, replayOut.String())
		}
	}
}
