package main

// Replay mode: drive a kavserve instance with a trace, the load-generator
// half of the online verification pipeline. Operations are partitioned over
// concurrent streaming /ingest connections by key hash — every key's
// operations flow through exactly one connection, preserving the per-key
// arrival order the server's streaming engine requires, while connections
// interleave freely (the production shape: many clients, disjoint key sets).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/online"
)

// runReplay sends the trace's lines to baseURL/ingest over `clients`
// concurrent connections at an approximate aggregate `rate` ops/second
// (0 = unlimited), then optionally drains the server and prints its final
// verdicts.
func runReplay(baseURL string, traceText []byte, clients int, rate float64, drain bool, out io.Writer) error {
	if clients < 1 {
		clients = 1
	}
	buckets := make([][][]byte, clients)
	total := 0
	for _, line := range bytes.Split(traceText, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		h := fnv.New32a()
		h.Write(keyOf(line))
		b := int(h.Sum32() % uint32(clients))
		buckets[b] = append(buckets[b], line)
		total++
	}

	// Pacing: a central dispenser feeds at most `rate` tokens per second;
	// every connection takes one token per operation. Approximate — at very
	// high rates the ticker saturates and replay runs effectively unpaced.
	var tokens chan struct{}
	pacerDone := make(chan struct{})
	defer close(pacerDone)
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tokens = make(chan struct{})
		tick := time.NewTicker(interval)
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-pacerDone:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					case <-pacerDone:
						return
					}
				}
			}
		}()
	}

	var (
		wg     sync.WaitGroup
		sent   atomic.Int64
		active int
		errs   = make(chan error, clients)
	)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		active++
		wg.Add(1)
		go func(bucket [][]byte) {
			defer wg.Done()
			if err := replayConn(baseURL, bucket, tokens, pacerDone, &sent); err != nil {
				errs <- err
			}
		}(bucket)
	}
	wg.Wait()
	close(errs)
	fmt.Fprintf(out, "replayed %d/%d ops over %d connection(s)\n", sent.Load(), total, active)
	if err := <-errs; err != nil {
		return err
	}

	if drain {
		resp, err := http.Post(baseURL+"/drain", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return printServerVerdict(out, resp.Body, true)
	}
	resp, err := http.Get(baseURL + "/verdict")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printServerVerdict(out, resp.Body, false)
}

// replayConn streams one bucket's lines as a single chunked /ingest request.
// The writer goroutine also watches `stop` while waiting for a pacing token:
// when the request side fails, only a pipe write would unblock it otherwise,
// and it would leak parked on the token channel.
func replayConn(baseURL string, bucket [][]byte, tokens chan struct{}, stop <-chan struct{}, sent *atomic.Int64) error {
	pr, pw := io.Pipe()
	go func() {
		var nl = []byte("\n")
		for _, line := range bucket {
			if tokens != nil {
				select {
				case <-tokens:
				case <-stop:
					return
				}
			}
			if _, err := pw.Write(line); err != nil {
				return // request side failed; it reports the error
			}
			if _, err := pw.Write(nl); err != nil {
				return
			}
			sent.Add(1)
		}
		pw.Close()
	}()
	resp, err := http.Post(baseURL+"/ingest", "text/plain", pr)
	if err != nil {
		pr.Close()
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// keyOf extracts the key column (second whitespace-separated field) of a
// keyed trace line; partitioning only needs it as a hash input, so malformed
// lines (rejected server-side) may map anywhere.
func keyOf(line []byte) []byte {
	fields := bytes.Fields(line)
	if len(fields) >= 2 {
		return fields[1]
	}
	return line
}

// printServerVerdict renders a kavserve verdict document like kavserve's own
// shutdown summary, so pipeline and server logs read the same.
func printServerVerdict(out io.Writer, body io.Reader, drained bool) error {
	var doc online.VerdictDoc
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		return fmt.Errorf("verdict response: %w", err)
	}
	state := "live"
	if doc.Drained {
		state = "final"
	}
	doc.WriteText(out, "server: "+state)
	if drained && !doc.Drained {
		return fmt.Errorf("server did not report itself drained")
	}
	return nil
}
