package main

// Replay mode: drive a kavserve instance with a trace, the load-generator
// half of the online verification pipeline. Operations are partitioned over
// concurrent /ingest connections by key hash — every key's operations flow
// through exactly one connection, preserving the per-key arrival order the
// server's streaming engine requires, while connections interleave freely
// (the production shape: many clients, disjoint key sets).
//
// Each connection sends its lines in batches of -batch-ops, strictly
// sequentially: a key's next batch never leaves before the previous one is
// acknowledged. Transient failures — connection errors, 503 overload or
// buffer-limit shedding — retry with exponential backoff and jitter,
// honoring Retry-After. A connection error leaves the batch's fate unknown,
// so before resending the client reconciles against /verdict: the server's
// per-key op counts are authoritative (this connection owns its keys), and
// exactly the unacknowledged suffix is retried — no op is ever ingested
// twice. 409 draining is terminal. -resume applies the same reconcile at
// startup, skipping per-key prefixes a previous run already delivered.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kat"
	"kat/internal/cluster"
	"kat/internal/online"
	"kat/internal/trace"
	"kat/internal/wire"
)

// Retry schedule knobs, injectable for tests.
var (
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

// replayOpts carries the -replay flag family.
type replayOpts struct {
	clients  int
	rate     float64
	drain    bool
	batchOps int
	retries  int
	resume   bool
	// wire posts each batch as one self-contained binary wire frame under
	// Content-Type application/x-kav-wire instead of newline text.
	wire bool
	// quietVerdict suppresses the final verdict fetch+print; cluster mode
	// sets it on the per-node runs and prints one merged document itself.
	quietVerdict bool
}

// runReplay sends the trace's lines to baseURL/ingest over o.clients
// concurrent connections at an approximate aggregate o.rate ops/second
// (0 = unlimited), then optionally drains the server and prints its final
// verdicts. baseURL may be a comma-separated member node list: the trace
// is then pre-routed per node with the cluster key hash (bypassing any
// router) and each node gets its own connections, acks, and reconciles.
func runReplay(baseURL string, traceText []byte, o replayOpts, out io.Writer) error {
	if nodes := splitNodeList(baseURL); len(nodes) > 1 {
		return runReplayCluster(nodes, traceText, o, out)
	}
	clients := o.clients
	if clients < 1 {
		clients = 1
	}
	if o.batchOps < 1 {
		o.batchOps = 512
	}
	if o.retries < 1 {
		o.retries = 1
	}
	lines, err := splitTraceOps(traceText)
	if err != nil {
		return err
	}
	buckets := make([][][]byte, clients)
	total := len(lines)
	for _, line := range lines {
		h := fnv.New32a()
		h.Write(keyOf(line))
		b := int(h.Sum32() % uint32(clients))
		buckets[b] = append(buckets[b], line)
	}

	// -resume: ask the server what it already has and skip those per-key
	// prefixes; a crashed replay continues where its acknowledgments stopped.
	resumed := map[string]int{}
	if o.resume {
		counts, err := fetchServerCounts(baseURL)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		skipped := 0
		for b, bucket := range buckets {
			remaining := bucket[:0]
			skip := map[string]int{}
			for _, line := range bucket {
				key := string(keyOf(line))
				if skip[key] < counts[key] {
					skip[key]++
					resumed[key]++
					skipped++
					continue
				}
				remaining = append(remaining, line)
			}
			buckets[b] = remaining
		}
		if skipped > 0 {
			fmt.Fprintf(out, "resume: server already holds %d of these ops; skipping\n", skipped)
		}
	}

	// Pacing: each connection owns a token bucket refilled at its share of
	// the aggregate rate and takes tokens in batch-sized grants, so one
	// sleep covers a whole grant of operations. A central ticker dispenser
	// (the previous design) saturates near the ticker resolution — rates
	// above ~1/ms could never be honored; local buckets have no dispenser
	// to saturate, and the batch grant amortizes timer granularity, so the
	// requested rate is met until the network itself is the limit.
	active := 0
	for _, bucket := range buckets {
		if len(bucket) > 0 {
			active++
		}
	}
	var perConnRate float64
	grant := 1
	if o.rate > 0 && active > 0 {
		perConnRate = o.rate / float64(active)
		grant = grantSize(perConnRate)
	}

	pacerDone := make(chan struct{})
	defer close(pacerDone)
	var (
		wg   sync.WaitGroup
		sent atomic.Int64
		errs = make(chan error, clients)
	)
	for ci, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int, bucket [][]byte) {
			defer wg.Done()
			var tb *tokenBucket
			if perConnRate > 0 {
				tb = newTokenBucket(perConnRate, grant, pacerDone)
			}
			r := &connReplayer{
				base:        baseURL,
				acked:       map[string]int{},
				maxAttempts: o.retries,
				rng:         rand.New(rand.NewSource(int64(ci) + 1)),
				sent:        &sent,
				stop:        pacerDone,
				wire:        o.wire,
			}
			for _, line := range bucket {
				// Seed acknowledgments with the resumed prefixes so a later
				// reconcile doesn't mistake them for this run's deliveries.
				key := string(keyOf(line))
				if _, ok := r.acked[key]; !ok {
					r.acked[key] = resumed[key]
				}
			}
			if err := r.replay(bucket, tb, o.batchOps); err != nil {
				errs <- err
			}
		}(ci, bucket)
	}
	wg.Wait()
	close(errs)
	fmt.Fprintf(out, "replayed %d/%d ops over %d connection(s)\n", sent.Load(), total, active)
	if err := <-errs; err != nil {
		return err
	}
	if o.quietVerdict {
		return nil
	}

	if o.drain {
		resp, err := http.Post(baseURL+"/drain", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return printServerVerdict(out, resp.Body, true)
	}
	resp, err := http.Get(baseURL + "/verdict")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printServerVerdict(out, resp.Body, false)
}

// splitTraceOps parses the keyed trace text and re-renders it one operation
// per line (trailing newline stripped). Routing — the per-connection buckets
// of runReplay and the per-node pre-routing of runReplayCluster — hashes one
// key per line, but the trace grammar allows ';'-separated multi-op lines
// that may mix keys; routing such a line whole would send every op to the
// first op's owner, breaking per-key ordering (single node) and partition
// placement (cluster). One op per line also makes line acknowledgments equal
// server-side op counts, which the /verdict reconcile arithmetic depends on.
func splitTraceOps(traceText []byte) ([][]byte, error) {
	var lines [][]byte
	err := trace.ParseStreamBytes(bytes.NewReader(traceText), func(key []byte, op kat.Operation) error {
		line := trace.AppendKeyedOpText(nil, key, op)
		lines = append(lines, bytes.TrimSuffix(line, []byte("\n")))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lines, nil
}

// splitNodeList parses a comma-separated -replay target list.
func splitNodeList(target string) []string {
	var nodes []string
	for _, n := range bytes.Split([]byte(target), []byte(",")) {
		if n = bytes.TrimSpace(n); len(n) > 0 {
			nodes = append(nodes, string(n))
		}
	}
	return nodes
}

// runReplayCluster replays against member nodes directly, bypassing any
// router: lines pre-route per node with the same FNV-1a key-hash partition
// the router uses, so every key's operations land wholly on its owner in
// order. Each node runs the full single-node machinery — its own
// connections, sequential acked batches, retry/backoff, and per-node
// /verdict reconciliation — then the nodes are drained together and one
// merged cluster verdict is printed.
func runReplayCluster(nodes []string, traceText []byte, o replayOpts, out io.Writer) error {
	part, err := cluster.NewPartition(len(nodes), 0)
	if err != nil {
		return err
	}
	// Pre-route per operation, not per raw line: splitTraceOps has already
	// broken ';'-separated multi-key lines apart, so each rendered line
	// carries exactly the one key its owner is chosen by.
	lines, err := splitTraceOps(traceText)
	if err != nil {
		return err
	}
	perNode := make([][]byte, len(nodes))
	for _, line := range lines {
		n := part.Owner(keyOf(line))
		perNode[n] = append(append(perNode[n], line...), '\n')
	}
	// Connections divide across nodes (at least one each); so does the
	// aggregate rate, in proportion to each node's share of the ops.
	perNodeOpts := o
	perNodeOpts.quietVerdict = true
	perNodeOpts.drain = false
	if o.clients > len(nodes) {
		perNodeOpts.clients = o.clients / len(nodes)
	} else {
		perNodeOpts.clients = 1
	}
	if o.rate > 0 {
		perNodeOpts.rate = o.rate / float64(len(nodes))
	}
	var wg sync.WaitGroup
	outputs := make([]bytes.Buffer, len(nodes))
	errs := make([]error, len(nodes))
	for n, text := range perNode {
		if len(text) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, text []byte) {
			defer wg.Done()
			fmt.Fprintf(&outputs[n], "node %d (%s): ", n, nodes[n])
			errs[n] = runReplay(nodes[n], text, perNodeOpts, &outputs[n])
		}(n, text)
	}
	wg.Wait()
	for n := range outputs {
		if outputs[n].Len() > 0 {
			io.Copy(out, &outputs[n])
		}
	}
	for n, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d (%s): %w", n, nodes[n], err)
		}
	}

	// Coordinated drain (or live verdict), then one merged document.
	docs := make([]online.VerdictDoc, 0, len(nodes))
	for n, base := range nodes {
		var resp *http.Response
		var err error
		if o.drain {
			resp, err = http.Post(base+"/drain", "application/json", nil)
		} else {
			resp, err = http.Get(base + "/verdict")
		}
		if err != nil {
			return fmt.Errorf("node %d (%s): %w", n, base, err)
		}
		var doc online.VerdictDoc
		derr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if derr != nil {
			return fmt.Errorf("node %d (%s): verdict response: %w", n, base, derr)
		}
		docs = append(docs, doc)
	}
	merged := cluster.MergeDocs(docs)
	state := "live"
	if merged.Drained {
		state = "final"
	}
	merged.WriteText(out, fmt.Sprintf("cluster (%d nodes): %s", len(nodes), state))
	if o.drain && !merged.Drained {
		return fmt.Errorf("cluster did not report itself drained")
	}
	return nil
}

// grantSize picks the token-bucket grant (lines per take) for one
// connection's rate: ~50 grants per second, so the writer sleeps a
// schedulable >= 20ms between grants instead of fighting timer resolution
// per line, clamped to keep low rates smooth and bursts bounded.
func grantSize(perConnRate float64) int {
	g := int(perConnRate / 50)
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// tokenBucket paces one replay connection. Tokens accrue at `rate` per
// second against a wall clock read on demand (no feeding goroutine, nothing
// to saturate), capped at a burst of two grants. take(n) blocks until n
// tokens are available or the stop channel closes.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	stop   <-chan struct{}
	// now / sleep are the clock, injectable for tests.
	now   func() time.Time
	sleep func(time.Duration) bool
}

func newTokenBucket(rate float64, grant int, stop <-chan struct{}) *tokenBucket {
	tb := &tokenBucket{
		rate:  rate,
		burst: 2 * float64(grant),
		stop:  stop,
		now:   time.Now,
	}
	tb.sleep = func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-tb.stop:
			return false
		}
	}
	tb.tokens = tb.burst // start full: the first grant goes out immediately
	tb.last = tb.now()
	return tb
}

// take blocks until n tokens accrue (false when stopped mid-wait).
func (b *tokenBucket) take(n int) bool {
	need := float64(n)
	for {
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if cap := max(b.burst, need); b.tokens > cap {
			b.tokens = cap
		}
		b.last = now
		if b.tokens >= need {
			b.tokens -= need
			return true
		}
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond // below timer resolution: oversleep, the bucket credits it back
		}
		if !b.sleep(wait) {
			return false
		}
	}
}

// connReplayer drives one connection's bucket: sequential acknowledged
// batches with retry, backoff, and exact-suffix reconciliation.
type connReplayer struct {
	base        string
	acked       map[string]int // per-key ops the server has acknowledged
	maxAttempts int
	rng         *rand.Rand
	sent        *atomic.Int64
	stop        <-chan struct{}
	wire        bool          // post binary wire frames instead of text
	enc         *wire.Encoder // lazily built; reused across batches
}

// encodeBatch renders one batch as a single self-contained wire frame.
// Retries re-encode from the (possibly trimmed) line suffix, so a partial
// acceptance never resends applied operations.
func (r *connReplayer) encodeBatch(batch [][]byte) ([]byte, error) {
	if r.enc == nil {
		r.enc = wire.NewEncoder()
		// Every request is its own decode stream server-side, so each
		// frame must carry its own dictionary.
		r.enc.SetSelfContained(true)
	}
	err := trace.ParseStream(bytes.NewReader(joinLines(batch)), func(key string, op kat.Operation) error {
		return r.enc.Add(key, op)
	})
	if err != nil {
		r.enc.Reset()
		return nil, err
	}
	return r.enc.AppendFrame(nil), nil
}

// replay sends the bucket in sequential batches: the next batch leaves only
// after the previous one is fully acknowledged, so a key's operations are
// never pipelined past an unacknowledged batch.
func (r *connReplayer) replay(bucket [][]byte, tb *tokenBucket, batchOps int) error {
	for off := 0; off < len(bucket); off += batchOps {
		end := off + batchOps
		if end > len(bucket) {
			end = len(bucket)
		}
		if tb != nil && !tb.take(end-off) {
			return nil // pacer stopped: another connection failed terminally
		}
		if err := r.postBatch(bucket[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// postBatch delivers one batch, retrying transient failures until the whole
// batch is acknowledged. Partial acceptance (IngestReject.Ingested, or a
// /verdict reconcile after an ambiguous connection error) shrinks the batch
// to its unacknowledged suffix before the next attempt.
func (r *connReplayer) postBatch(batch [][]byte) error {
	attempts := 0
	delay := retryBaseDelay
	ambiguous := false // a connection error left in-flight ops unaccounted
	for len(batch) > 0 {
		if ambiguous {
			counts, err := fetchServerCounts(r.base)
			if err != nil {
				attempts++
				if attempts >= r.maxAttempts {
					return fmt.Errorf("ingest reconcile: %w (after %d attempts)", err, attempts)
				}
				if !r.backoff(&delay, 0) {
					return nil
				}
				continue
			}
			batch = r.trimAcked(batch, counts)
			ambiguous = false
			continue
		}
		payload, ctype := joinLines(batch), "text/plain"
		if r.wire {
			frame, err := r.encodeBatch(batch)
			if err != nil {
				return fmt.Errorf("wire encode: %w", err)
			}
			payload, ctype = frame, wire.ContentType
		}
		resp, err := http.Post(r.base+"/ingest", ctype, bytes.NewReader(payload))
		if err != nil {
			// The connection died with the batch in flight: the server may
			// have applied any prefix of it. Never resend blind — mark the
			// outcome ambiguous and reconcile before the next attempt.
			attempts++
			if attempts >= r.maxAttempts {
				return fmt.Errorf("ingest: %w (after %d attempts)", err, attempts)
			}
			if !r.backoff(&delay, 0) {
				return nil
			}
			ambiguous = true
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			r.noteAcked(batch)
			return nil
		}
		var rej online.IngestReject
		_ = json.Unmarshal(body, &rej)
		if rej.Code == "degraded" {
			// A cluster router split this batch per member node, so Ingested
			// is NOT a batch prefix — some middle of the batch may have
			// landed on healthy nodes. Prefix-trimming would corrupt the
			// stream; reconcile per key against /verdict instead. The
			// reconcile only trusts a complete (200) verdict: while the
			// cluster is partial the fate of the dead slice's ops is
			// unknowable and resending blind could double-ingest.
			attempts++
			if attempts >= r.maxAttempts {
				return fmt.Errorf("ingest: %s: %s (after %d attempts)", resp.Status, bytes.TrimSpace(body), attempts)
			}
			var retryAfter time.Duration
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				retryAfter = time.Duration(s) * time.Second
			}
			if !r.backoff(&delay, retryAfter) {
				return nil
			}
			ambiguous = true
			continue
		}
		if rej.Ingested > 0 {
			// The server applied a prefix before rejecting; acknowledge it
			// and keep only the suffix.
			n := int(rej.Ingested)
			if n > len(batch) {
				n = len(batch)
			}
			r.noteAcked(batch[:n])
			batch = batch[n:]
		}
		switch {
		case rej.Code == "draining":
			return fmt.Errorf("server is draining; %d op(s) of this batch unsent", len(batch))
		case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode >= 500:
			// Overload shedding, buffer-limit pushback, or a durability
			// fault the operator may repair: transient, retry.
			attempts++
			if attempts >= r.maxAttempts {
				return fmt.Errorf("ingest: %s: %s (after %d attempts)", resp.Status, bytes.TrimSpace(body), attempts)
			}
			var retryAfter time.Duration
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				retryAfter = time.Duration(s) * time.Second
			}
			if !r.backoff(&delay, retryAfter) {
				return nil
			}
		default:
			// Malformed input, out-of-order ops, or any other client error:
			// retrying cannot help.
			return fmt.Errorf("ingest: %s: %s", resp.Status, bytes.TrimSpace(body))
		}
	}
	return nil
}

// backoff sleeps the jittered current delay (at least retryAfter when the
// server named one) and doubles it for next time, capped. Returns false if
// the pacer stop channel closed mid-sleep.
func (r *connReplayer) backoff(delay *time.Duration, retryAfter time.Duration) bool {
	d := *delay
	if retryAfter > d {
		d = retryAfter
	}
	*delay *= 2
	if *delay > retryMaxDelay {
		*delay = retryMaxDelay
	}
	// Full jitter on the top half: uniform in [d/2, d] keeps retries from
	// synchronizing across connections while preserving the floor.
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stop:
		return false
	}
}

// noteAcked records lines the server acknowledged.
func (r *connReplayer) noteAcked(lines [][]byte) {
	for _, line := range lines {
		r.acked[string(keyOf(line))]++
	}
	r.sent.Add(int64(len(lines)))
}

// trimAcked drops the leading lines of each key that the server's reported
// counts say were already applied — the delta between the server's per-key
// count and what this connection has acknowledged. Sound because every key
// routes through exactly one connection, and that connection sends strictly
// sequentially: only the current batch can be partially applied.
func (r *connReplayer) trimAcked(batch [][]byte, counts map[string]int) [][]byte {
	applied := map[string]int{}
	for key, have := range r.acked {
		if extra := counts[key] - have; extra > 0 {
			applied[key] = extra
		}
	}
	remaining := batch[:0:0]
	for _, line := range batch {
		key := string(keyOf(line))
		if applied[key] > 0 {
			applied[key]--
			r.noteAcked([][]byte{line})
			continue
		}
		remaining = append(remaining, line)
	}
	return remaining
}

// fetchServerCounts reads /verdict and returns the server's authoritative
// per-key ingested-op counts (verified + pending).
func fetchServerCounts(baseURL string) (map[string]int, error) {
	resp, err := http.Get(baseURL + "/verdict")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("verdict: %s", resp.Status)
	}
	var doc online.VerdictDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	counts := make(map[string]int, len(doc.Keys))
	for _, ks := range doc.Keys {
		counts[ks.Key] = ks.Ops
	}
	return counts, nil
}

// joinLines flattens a batch into one newline-terminated request body.
func joinLines(lines [][]byte) []byte {
	n := 0
	for _, line := range lines {
		n += len(line) + 1
	}
	body := make([]byte, 0, n)
	for _, line := range lines {
		body = append(body, line...)
		body = append(body, '\n')
	}
	return body
}

// keyOf extracts the key column (second whitespace-separated field) of a
// keyed trace line; partitioning only needs it as a hash input, so malformed
// lines (rejected server-side) may map anywhere.
func keyOf(line []byte) []byte {
	fields := bytes.Fields(line)
	if len(fields) >= 2 {
		return fields[1]
	}
	return line
}

// printServerVerdict renders a kavserve verdict document like kavserve's own
// shutdown summary, so pipeline and server logs read the same.
func printServerVerdict(out io.Writer, body io.Reader, drained bool) error {
	var doc online.VerdictDoc
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		return fmt.Errorf("verdict response: %w", err)
	}
	state := "live"
	if doc.Drained {
		state = "final"
	}
	doc.WriteText(out, "server: "+state)
	if drained && !doc.Drained {
		return fmt.Errorf("server did not report itself drained")
	}
	return nil
}
