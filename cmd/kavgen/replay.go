package main

// Replay mode: drive a kavserve instance with a trace, the load-generator
// half of the online verification pipeline. Operations are partitioned over
// concurrent streaming /ingest connections by key hash — every key's
// operations flow through exactly one connection, preserving the per-key
// arrival order the server's streaming engine requires, while connections
// interleave freely (the production shape: many clients, disjoint key sets).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/online"
)

// runReplay sends the trace's lines to baseURL/ingest over `clients`
// concurrent connections at an approximate aggregate `rate` ops/second
// (0 = unlimited), then optionally drains the server and prints its final
// verdicts.
func runReplay(baseURL string, traceText []byte, clients int, rate float64, drain bool, out io.Writer) error {
	if clients < 1 {
		clients = 1
	}
	buckets := make([][][]byte, clients)
	total := 0
	for _, line := range bytes.Split(traceText, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		h := fnv.New32a()
		h.Write(keyOf(line))
		b := int(h.Sum32() % uint32(clients))
		buckets[b] = append(buckets[b], line)
		total++
	}

	// Pacing: each connection owns a token bucket refilled at its share of
	// the aggregate rate and takes tokens in batch-sized grants, so one
	// sleep covers a whole grant of operations. A central ticker dispenser
	// (the previous design) saturates near the ticker resolution — rates
	// above ~1/ms could never be honored; local buckets have no dispenser
	// to saturate, and the batch grant amortizes timer granularity, so the
	// requested rate is met until the network itself is the limit.
	active := 0
	for _, bucket := range buckets {
		if len(bucket) > 0 {
			active++
		}
	}
	var perConnRate float64
	grant := 1
	if rate > 0 && active > 0 {
		perConnRate = rate / float64(active)
		grant = grantSize(perConnRate)
	}

	pacerDone := make(chan struct{})
	defer close(pacerDone)
	var (
		wg   sync.WaitGroup
		sent atomic.Int64
		errs = make(chan error, clients)
	)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(bucket [][]byte) {
			defer wg.Done()
			var tb *tokenBucket
			if perConnRate > 0 {
				tb = newTokenBucket(perConnRate, grant, pacerDone)
			}
			if err := replayConn(baseURL, bucket, tb, grant, &sent); err != nil {
				errs <- err
			}
		}(bucket)
	}
	wg.Wait()
	close(errs)
	fmt.Fprintf(out, "replayed %d/%d ops over %d connection(s)\n", sent.Load(), total, active)
	if err := <-errs; err != nil {
		return err
	}

	if drain {
		resp, err := http.Post(baseURL+"/drain", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return printServerVerdict(out, resp.Body, true)
	}
	resp, err := http.Get(baseURL + "/verdict")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printServerVerdict(out, resp.Body, false)
}

// grantSize picks the token-bucket grant (lines per take) for one
// connection's rate: ~50 grants per second, so the writer sleeps a
// schedulable >= 20ms between grants instead of fighting timer resolution
// per line, clamped to keep low rates smooth and bursts bounded.
func grantSize(perConnRate float64) int {
	g := int(perConnRate / 50)
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// tokenBucket paces one replay connection. Tokens accrue at `rate` per
// second against a wall clock read on demand (no feeding goroutine, nothing
// to saturate), capped at a burst of two grants. take(n) blocks until n
// tokens are available or the stop channel closes.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	stop   <-chan struct{}
	// now / sleep are the clock, injectable for tests.
	now   func() time.Time
	sleep func(time.Duration) bool
}

func newTokenBucket(rate float64, grant int, stop <-chan struct{}) *tokenBucket {
	tb := &tokenBucket{
		rate:  rate,
		burst: 2 * float64(grant),
		stop:  stop,
		now:   time.Now,
	}
	tb.sleep = func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-tb.stop:
			return false
		}
	}
	tb.tokens = tb.burst // start full: the first grant goes out immediately
	tb.last = tb.now()
	return tb
}

// take blocks until n tokens accrue (false when stopped mid-wait).
func (b *tokenBucket) take(n int) bool {
	need := float64(n)
	for {
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if cap := max(b.burst, need); b.tokens > cap {
			b.tokens = cap
		}
		b.last = now
		if b.tokens >= need {
			b.tokens -= need
			return true
		}
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond // below timer resolution: oversleep, the bucket credits it back
		}
		if !b.sleep(wait) {
			return false
		}
	}
}

// replayConn streams one bucket's lines as a single chunked /ingest request,
// taking pacing tokens in grant-sized batches. The writer goroutine gives up
// waiting for tokens when the request side fails (the bucket watches the
// pacer's stop channel), so it never leaks parked on the pacer.
func replayConn(baseURL string, bucket [][]byte, tb *tokenBucket, grant int, sent *atomic.Int64) error {
	pr, pw := io.Pipe()
	go func() {
		var nl = []byte("\n")
		for off := 0; off < len(bucket); off += grant {
			end := off + grant
			if end > len(bucket) {
				end = len(bucket)
			}
			if tb != nil && !tb.take(end-off) {
				return
			}
			for _, line := range bucket[off:end] {
				if _, err := pw.Write(line); err != nil {
					return // request side failed; it reports the error
				}
				if _, err := pw.Write(nl); err != nil {
					return
				}
				sent.Add(1)
			}
		}
		pw.Close()
	}()
	resp, err := http.Post(baseURL+"/ingest", "text/plain", pr)
	if err != nil {
		pr.Close()
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// keyOf extracts the key column (second whitespace-separated field) of a
// keyed trace line; partitioning only needs it as a hash input, so malformed
// lines (rejected server-side) may map anywhere.
func keyOf(line []byte) []byte {
	fields := bytes.Fields(line)
	if len(fields) >= 2 {
		return fields[1]
	}
	return line
}

// printServerVerdict renders a kavserve verdict document like kavserve's own
// shutdown summary, so pipeline and server logs read the same.
func printServerVerdict(out io.Writer, body io.Reader, drained bool) error {
	var doc online.VerdictDoc
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		return fmt.Errorf("verdict response: %w", err)
	}
	state := "live"
	if doc.Drained {
		state = "final"
	}
	doc.WriteText(out, "server: "+state)
	if drained && !doc.Drained {
		return fmt.Errorf("server did not report itself drained")
	}
	return nil
}
