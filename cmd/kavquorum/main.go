// Command kavquorum simulates a quorum-replicated register and reports how
// k-atomic its histories are — the measurement the paper's Section VII
// proposes running against real storage systems.
//
// Usage:
//
//	kavquorum -n 5 -r 1 -w 1 -runs 20 -skew 25
//	kavquorum -n 3 -r 2 -w 2 -clients 8 -ops 50 -emit trace.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavquorum:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavquorum", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 3, "replicas")
		r       = fs.Int("r", 2, "read quorum")
		w       = fs.Int("w", 2, "write quorum")
		clients = fs.Int("clients", 4, "concurrent clients")
		ops     = fs.Int("ops", 15, "operations per client")
		runs    = fs.Int("runs", 10, "independent runs (seeds 0..runs-1)")
		skew    = fs.Int64("skew", 0, "max per-client clock skew")
		crash   = fs.Int("crash", 0, "replicas to crash mid-run")
		delay   = fs.Int64("max-delay", 10, "max one-way message delay")
		emit    = fs.String("emit", "", "write the first run's history to this file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mk := func(seed int64) (*kat.History, kat.QuorumStats, error) {
		return kat.SimulateQuorum(kat.QuorumConfig{
			Seed: seed, Replicas: *n, ReadQuorum: *r, WriteQuorum: *w,
			Clients: *clients, OpsPerClient: *ops,
			ClockSkew: *skew, CrashReplicas: *crash, MaxDelay: *delay,
		})
	}

	if *emit != "" {
		h, stats, err := mk(0)
		if err != nil {
			return err
		}
		f, err := os.Create(*emit)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := io.WriteString(f, h.String()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d ops to %s (stats: %+v)\n", h.Len(), *emit, stats)
		return nil
	}

	var corpus []*kat.History
	var agg kat.QuorumStats
	for seed := int64(0); seed < int64(*runs); seed++ {
		h, stats, err := mk(seed)
		if err != nil {
			return err
		}
		corpus = append(corpus, h)
		agg.CompletedWrites += stats.CompletedWrites
		agg.CompletedReads += stats.CompletedReads
		agg.TimedOutWrites += stats.TimedOutWrites
		agg.TimedOutReads += stats.TimedOutReads
		agg.Crashes += stats.Crashes
	}
	fmt.Fprintf(out, "config: N=%d R=%d W=%d clients=%d ops/client=%d skew=%d crash=%d\n",
		*n, *r, *w, *clients, *ops, *skew, *crash)
	fmt.Fprintf(out, "traffic: %d writes, %d reads completed; %d/%d timed out; %d crashes\n",
		agg.CompletedWrites, agg.CompletedReads, agg.TimedOutWrites, agg.TimedOutReads, agg.Crashes)

	dist := kat.SmallestKDistribution(corpus, kat.Options{})
	fmt.Fprintf(out, "smallest-k distribution over %d runs: %s\n", *runs, dist)
	for _, bound := range []int{1, 2, 3} {
		fmt.Fprintf(out, "  k<=%d: %5.1f%%\n", bound, 100*dist.Fraction(bound))
	}
	if *r+*w > *n {
		fmt.Fprintln(out, "note: R+W > N (strict quorums) — expect mostly k=1")
	} else {
		fmt.Fprintln(out, "note: R+W <= N (non-overlapping quorums possible) — expect staleness")
	}
	return nil
}
