package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kat"
)

func TestQuorumSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "3", "-r", "2", "-w", "2", "-runs", "3", "-ops", "8"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"smallest-k distribution", "k<=1", "R+W > N"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestQuorumWeakNote(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-r", "1", "-w", "1", "-runs", "2", "-ops", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "R+W <= N") {
		t.Errorf("weak-quorum note missing:\n%s", out.String())
	}
}

func TestQuorumEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var out strings.Builder
	if err := run([]string{"-n", "3", "-r", "2", "-w", "2", "-ops", "6", "-emit", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read emitted trace: %v", err)
	}
	if _, err := kat.Parse(string(data)); err != nil {
		t.Fatalf("emitted trace not parseable: %v", err)
	}
}

func TestQuorumBadConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "3", "-r", "9", "-w", "2"}, &out); err == nil {
		t.Error("invalid quorum accepted")
	}
}
