package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kat"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAccepts(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nr 1 40 50\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2-atomic: true") {
		t.Errorf("output = %q", out.String())
	}
}

// TestCheckSingleRegisterWorkers drives the chunk-parallel single-register
// path: -workers != 1 on a plain (non-keyed) history must agree with the
// sequential run for both the fixed-k check and -smallest.
func TestCheckSingleRegisterWorkers(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nr 1 40 50\nw 3 100 110\nr 3 120 130\n")
	var par, seq strings.Builder
	if err := run([]string{"-k", "2", "-workers", "4", path}, &par); err != nil {
		t.Fatalf("parallel run: %v\n%s", err, par.String())
	}
	if err := run([]string{"-k", "2", path}, &seq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if !strings.Contains(par.String(), "2-atomic: true") {
		t.Errorf("parallel output = %q", par.String())
	}
	par.Reset()
	if err := run([]string{"-smallest", "-workers", "4", path}, &par); err != nil {
		t.Fatalf("parallel -smallest: %v\n%s", err, par.String())
	}
	if !strings.Contains(par.String(), "smallest k: 2") {
		t.Errorf("parallel -smallest output = %q", par.String())
	}
	// A rejecting history must still exit non-zero through the parallel path.
	bad := writeTemp(t, "w 1 0 10\nw 2 20 30\nw 3 40 50\nr 1 60 70\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", "-workers", "2", bad}, &out); err == nil {
		t.Fatal("violating history accepted by parallel path")
	}
}

func TestCheckRejectsWithError(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nw 3 40 50\nr 1 60 70\n")
	var out strings.Builder
	err := run([]string{"-k", "2", path}, &out)
	if err == nil {
		t.Fatal("violating history did not produce an error exit")
	}
	if !strings.Contains(out.String(), "2-atomic: false") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckSmallest(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nr 1 40 50\n")
	var out strings.Builder
	if err := run([]string{"-smallest", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "smallest k: 2") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckWitness(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nr 1 20 30\n")
	var out strings.Builder
	if err := run([]string{"-k", "1", "-witness", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "witness order:") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckWeighted(t *testing.T) {
	path := writeTemp(t, "w 1 0 10 weight=2\nw 2 20 30 weight=3\nr 1 40 50\n")
	var out strings.Builder
	if err := run([]string{"-weighted", "5", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "weighted 5-atomic: true") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckShrink(t *testing.T) {
	path := writeTemp(t, `
w 1 0 10
w 2 20 30
w 3 40 50
r 1 60 70
w 9 100 110
r 9 120 130
`)
	var out strings.Builder
	err := run([]string{"-k", "2", "-shrink", path}, &out)
	if err == nil {
		t.Fatal("expected failure exit")
	}
	if !strings.Contains(out.String(), "minimal violating core (4 ops)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckAlgorithms(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nr 1 20 30\n")
	for _, algo := range []string{"auto", "lbt", "fzf", "oracle"} {
		k := "2"
		var out strings.Builder
		if err := run([]string{"-k", k, "-algo", algo, path}, &out); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	var out strings.Builder
	if err := run([]string{"-algo", "bogus", path}, &out); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestCheckJSONInput(t *testing.T) {
	path := writeTemp(t, `{"ops":[{"kind":"w","value":1,"start":0,"finish":10},{"kind":"r","value":1,"start":20,"finish":30}]}`)
	var out strings.Builder
	if err := run([]string{"-k", "1", "-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "1-atomic: true") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/nonexistent/file.txt"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCheckDeltaFlag(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nr 1 40 50\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", "-delta", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "smallest Δ") {
		t.Errorf("delta line missing:\n%s", out.String())
	}
}

func TestCheckTimelineFlag(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nr 1 20 30\n")
	var out strings.Builder
	if err := run([]string{"-k", "1", "-timeline", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "w(1)") {
		t.Errorf("timeline missing:\n%s", out.String())
	}
}

func TestCheckKeyedTrace(t *testing.T) {
	path := writeTemp(t, "w x 1 0 10\nr x 1 20 30\nw y 1 5 15\nw y 2 25 35\nr y 1 45 55\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", "-keyed", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "all 2 keys are 2-atomic") {
		t.Errorf("keyed summary missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-k", "1", "-keyed", path}, &out); err == nil {
		t.Error("k=1 keyed check should fail (key y is stale)")
	}
	if !strings.Contains(out.String(), "key y") {
		t.Errorf("per-key rows missing:\n%s", out.String())
	}
}

func TestCheckKeyedWorkers(t *testing.T) {
	path := writeTemp(t, "w x 1 0 10\nr x 1 20 30\nw y 1 5 15\nw y 2 25 35\nr y 1 45 55\n")
	for _, workers := range []string{"0", "1", "4"} {
		var out strings.Builder
		if err := run([]string{"-k", "2", "-keyed", "-workers", workers, path}, &out); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, out.String())
		}
		if !strings.Contains(out.String(), "all 2 keys are 2-atomic") {
			t.Errorf("workers=%s summary missing:\n%s", workers, out.String())
		}
	}
}

func TestCheckStream(t *testing.T) {
	path := writeTemp(t, "w x 1 0 10\nw y 1 5 15\nr x 1 20 30\nw y 2 25 35\nr y 1 45 55\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", "-stream", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"all 2 keys are 2-atomic", "stream: 5 ops over 2 keys"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	out.Reset()
	if err := run([]string{"-k", "1", "-stream", path}, &out); err == nil {
		t.Error("k=1 stream check should fail (key y is stale)")
	}
}

func TestCheckStreamSmallest(t *testing.T) {
	path := writeTemp(t, "w x 1 0 10\nr x 1 20 30\nw y 1 5 15\nw y 2 25 35\nr y 1 45 55\n")
	var out strings.Builder
	if err := run([]string{"-stream", "-smallest", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "key y            smallest k: 2") {
		t.Errorf("smallest-k rows missing:\n%s", got)
	}
}

// TestCheckStreamWireInput feeds -stream a binary wire file: the reader
// sniffs the magic and must print the very same output as the text form of
// the same trace, with no flag naming the codec.
func TestCheckStreamWireInput(t *testing.T) {
	text := "w x 1 0 10\nr x 1 20 30\nw y 1 5 15\nw y 2 25 35\nr y 1 45 55\n"
	tr, err := kat.ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		var bin bytes.Buffer
		if err := kat.WriteTraceWireArrivalOrder(&bin, tr, 2, compress); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "trace.wire")
		if err := os.WriteFile(path, bin.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		var wireOut, textOut strings.Builder
		if err := run([]string{"-stream", "-smallest", path}, &wireOut); err != nil {
			t.Fatalf("compress=%v: %v\n%s", compress, err, wireOut.String())
		}
		if err := run([]string{"-stream", "-smallest", writeTemp(t, text)}, &textOut); err != nil {
			t.Fatal(err)
		}
		if wireOut.String() != textOut.String() {
			t.Fatalf("compress=%v: wire and text runs disagree:\n%s\nvs\n%s",
				compress, wireOut.String(), textOut.String())
		}
		// The fixed-k form sniffs too.
		var out strings.Builder
		if err := run([]string{"-k", "2", "-stream", path}, &out); err != nil {
			t.Fatalf("compress=%v fixed-k: %v\n%s", compress, err, out.String())
		}
		if !strings.Contains(out.String(), "all 2 keys are 2-atomic") {
			t.Errorf("compress=%v: fixed-k wire output:\n%s", compress, out.String())
		}
	}
}

func TestCheckStdinDash(t *testing.T) {
	// "-" routes to os.Stdin; redirect it to a file for the test.
	path := writeTemp(t, "w 1 0 10\nr 1 20 30\n")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = old }()
	var out strings.Builder
	if err := run([]string{"-k", "1", "-"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1-atomic: true") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckPropertiesFlag(t *testing.T) {
	path := writeTemp(t, "w 1 0 10\nw 2 20 30\nr 1 40 50\n")
	var out strings.Builder
	if err := run([]string{"-k", "2", "-properties", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "regular=false") {
		t.Errorf("properties line missing or wrong:\n%s", out.String())
	}
}

func TestCheckStreamProperties(t *testing.T) {
	// key y's read is one write stale and overlaps nothing: k=2, Δ bridges
	// the gap back to the overwritten value, and the read is both
	// irregular and unsafe.
	path := writeTemp(t, "w x 1 0 10\nr x 1 20 30\nw y 1 5 15\nw y 2 25 35\nr y 1 45 55\n")
	var out strings.Builder
	if err := run([]string{"-stream", "-properties", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"key x               2 ops  smallest k: 1  smallest Δ: 0  irregular: 0  unsafe: 0",
		"smallest k: 2",
		"irregular: 1  unsafe: 1",
		"stream: 5 ops over 2 keys",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}
