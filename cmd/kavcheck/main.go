// Command kavcheck verifies k-atomicity of a history read from a file or
// standard input.
//
// Usage:
//
//	kavcheck [flags] [file]
//
// The input is the compact text format ("w 1 0 10", "r 1 20 30", one op per
// line; see package kat) or JSON with -json. Examples:
//
//	kavcheck -k 2 trace.txt          # is the trace 2-atomic?
//	kavcheck -smallest trace.txt     # smallest k
//	kavcheck -k 2 -algo lbt -witness trace.txt
//	kavcheck -weighted 5 trace.txt   # weighted k-AV (Section V)
//	kavcheck -k 2 -shrink trace.txt  # minimal violating core on failure
//	kavcheck -k 2 -keyed -workers 8 trace.txt  # multi-register, 8-way parallel
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavcheck", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 2, "staleness bound to verify")
		algo     = fs.String("algo", "auto", "algorithm: auto|zones|lbt|fzf|oracle")
		smallest = fs.Bool("smallest", false, "compute the smallest k instead of a yes/no check")
		weighted = fs.Int64("weighted", 0, "verify weighted k-AV with this bound (overrides -k)")
		doDelta  = fs.Bool("delta", false, "also report the smallest time-staleness bound Δ")
		props    = fs.Bool("properties", false, "also report Lamport safety and regularity")
		keyed    = fs.Bool("keyed", false, "input is a multi-register trace (w <key> <value> <start> <finish>)")
		workers  = fs.Int("workers", 0, "worker pool size for -keyed verification (0 = GOMAXPROCS, 1 = sequential)")
		timeline = fs.Bool("timeline", false, "draw the history as an ASCII timeline")
		showWit  = fs.Bool("witness", false, "print the witness total order on success")
		doShrink = fs.Bool("shrink", false, "on failure, print a minimized violating history")
		asJSON   = fs.Bool("json", false, "input is JSON ({\"ops\": [...]})")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *keyed {
		return runKeyed(fs.Args(), *k, *workers, out)
	}

	h, err := readHistory(fs.Args(), *asJSON)
	if err != nil {
		return err
	}
	if *timeline {
		p, err := kat.Prepare(kat.Normalize(h))
		if err != nil {
			return err
		}
		if err := kat.RenderTimeline(out, p, kat.RenderOptions{}); err != nil {
			return err
		}
	}
	if *doDelta {
		d, err := kat.SmallestDelta(h)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smallest Δ (time-staleness): %d\n", d)
	}
	if *props {
		p, err := kat.Prepare(kat.Normalize(h))
		if err != nil {
			return err
		}
		v := kat.CheckProperties(p)
		fmt.Fprintf(out, "properties: %s\n", v.Summary())
	}
	st := kat.Measure(h)
	fmt.Fprintf(out, "history: %d ops (%d writes, %d reads), max write concurrency %d\n",
		st.Ops, st.Writes, st.Reads, st.MaxConcurrentWrites)

	if *smallest {
		kMin, err := kat.SmallestK(h, kat.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smallest k: %d\n", kMin)
		return nil
	}

	if *weighted > 0 {
		rep, err := kat.CheckWeighted(h, *weighted, kat.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "weighted %d-atomic: %v\n", *weighted, rep.Atomic)
		if rep.Atomic && *showWit {
			printWitness(out, rep)
		}
		return nil
	}

	opts := kat.Options{}
	switch *algo {
	case "auto":
		opts.Algorithm = kat.AlgoAuto
	case "zones":
		opts.Algorithm = kat.AlgoZones
	case "lbt":
		opts.Algorithm = kat.AlgoLBT
	case "fzf":
		opts.Algorithm = kat.AlgoFZF
	case "oracle":
		opts.Algorithm = kat.AlgoOracle
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	rep, err := kat.Check(h, *k, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d-atomic: %v (algorithm: %v)\n", *k, rep.Atomic, rep.Algorithm)
	if rep.Atomic && *showWit {
		printWitness(out, rep)
	}
	if !rep.Atomic && *doShrink {
		kk := *k
		min := kat.Minimize(h, func(c *kat.History) bool {
			r, err := kat.Check(c, kk, kat.Options{})
			return err == nil && !r.Atomic
		})
		fmt.Fprintf(out, "minimal violating core (%d ops):\n%s", min.Len(), min)
	}
	if !rep.Atomic {
		return fmt.Errorf("history is not %d-atomic", *k)
	}
	return nil
}

// runKeyed verifies a multi-register trace per key, fanning the keys out
// over a worker pool.
func runKeyed(args []string, k, workers int, out io.Writer) error {
	var r io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	tr, err := kat.ParseTrace(string(data))
	if err != nil {
		return err
	}
	rep := kat.CheckTraceParallel(tr, k, kat.Options{}, workers)
	for _, kr := range rep.Keys {
		status := fmt.Sprintf("%d-atomic: %v", k, kr.Atomic)
		if kr.Err != nil {
			status = "error: " + kr.Err.Error()
		}
		fmt.Fprintf(out, "key %-12s %4d ops  %s\n", kr.Key, kr.Ops, status)
	}
	if !rep.Atomic() {
		return fmt.Errorf("trace is not %d-atomic (failing keys: %v)", k, rep.FailingKeys())
	}
	fmt.Fprintf(out, "trace: all %d keys are %d-atomic\n", len(rep.Keys), k)
	return nil
}

func readHistory(args []string, asJSON bool) (*kat.History, error) {
	var r io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if asJSON {
		var h kat.History
		if err := h.UnmarshalJSON(data); err != nil {
			return nil, err
		}
		return &h, nil
	}
	return kat.Parse(string(data))
}

func printWitness(out io.Writer, rep kat.Report) {
	fmt.Fprintln(out, "witness order:")
	for _, idx := range rep.Witness {
		fmt.Fprintf(out, "  %s\n", rep.Prepared.Op(idx))
	}
}
