// Command kavcheck verifies k-atomicity of a history read from a file or
// standard input.
//
// Usage:
//
//	kavcheck [flags] [file]
//
// The input is the compact text format ("w 1 0 10", "r 1 20 30", one op per
// line; see package kat) or JSON with -json; "-" (or no argument) reads
// standard input. Text inputs stream through a buffered reader, so memory
// tracks the parsed operations, not the file size — and with -stream the
// trace is never materialized at all. Examples:
//
//	kavcheck -k 2 trace.txt          # is the trace 2-atomic?
//	kavcheck -smallest trace.txt     # smallest k
//	kavcheck -k 2 -algo lbt -witness trace.txt
//	kavcheck -weighted 5 trace.txt   # weighted k-AV (Section V)
//	kavcheck -k 2 -shrink trace.txt  # minimal violating core on failure
//	kavcheck -k 2 -keyed -workers 8 trace.txt  # multi-register, 8-way parallel
//	tail -f ops.log | kavcheck -k 2 -stream -  # streaming pipeline
//	kavgen -keys 64 -ops 1000 -format wire | kavcheck -k 2 -stream -  # binary
//	kavcheck -stream -properties trace.txt   # smallest k + smallest Δ + regularity
//
// -stream sniffs its input: a stream opening with the binary wire-frame
// magic (kavgen -format wire; see internal/wire) decodes without any text
// parse, anything else reads as the keyed text format — no flag needed.
// -stream keeps operation buffering bounded by the open segment windows;
// a per-value index (needed for exact verdicts) still grows with the
// number of distinct written values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"kat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavcheck", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 2, "staleness bound to verify")
		algo     = fs.String("algo", "auto", "algorithm: auto|zones|lbt|fzf|oracle")
		smallest = fs.Bool("smallest", false, "compute the smallest k instead of a yes/no check")
		weighted = fs.Int64("weighted", 0, "verify weighted k-AV with this bound (overrides -k)")
		doDelta  = fs.Bool("delta", false, "also report the smallest time-staleness bound Δ")
		props    = fs.Bool("properties", false, "also report Lamport safety and regularity (with -stream: per-key smallest Δ and regularity verdicts from the same streaming pass)")
		keyed    = fs.Bool("keyed", false, "input is a multi-register trace (w <key> <value> <start> <finish>)")
		stream   = fs.Bool("stream", false, "streaming keyed verification: bounded memory, verdicts before EOF (implies -keyed)")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential); keys fan out for -keyed/-stream, chunks fan out within single registers")
		horizon  = fs.Int("horizon", 0, "staleness horizon for -stream -smallest (0 = default)")
		timeline = fs.Bool("timeline", false, "draw the history as an ASCII timeline")
		showWit  = fs.Bool("witness", false, "print the witness total order on success")
		doShrink = fs.Bool("shrink", false, "on failure, print a minimized violating history")
		asJSON   = fs.Bool("json", false, "input is JSON ({\"ops\": [...]})")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stream {
		if *props {
			return runStreamVerdicts(fs.Args(), *workers, *horizon, out)
		}
		return runStream(fs.Args(), *k, *smallest, *workers, *horizon, out)
	}
	if *keyed {
		return runKeyed(fs.Args(), *k, *workers, out)
	}

	h, err := readHistory(fs.Args(), *asJSON)
	if err != nil {
		return err
	}
	// Several paths below need the prepared form; build it once, lazily
	// (plain Check normalizes internally and may accept histories whose
	// anomalies Prepare reports differently, so don't prepare eagerly).
	var prepared *kat.Prepared
	prepare := func() (*kat.Prepared, error) {
		if prepared == nil {
			p, err := kat.Prepare(kat.Normalize(h))
			if err != nil {
				return nil, err
			}
			prepared = p
		}
		return prepared, nil
	}
	if *timeline {
		p, err := prepare()
		if err != nil {
			return err
		}
		if err := kat.RenderTimeline(out, p, kat.RenderOptions{}); err != nil {
			return err
		}
	}
	if *doDelta {
		d, err := kat.SmallestDelta(h)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smallest Δ (time-staleness): %d\n", d)
	}
	if *props {
		p, err := prepare()
		if err != nil {
			return err
		}
		v := kat.CheckProperties(p)
		fmt.Fprintf(out, "properties: %s\n", v.Summary())
	}
	st := kat.Measure(h)
	fmt.Fprintf(out, "history: %d ops (%d writes, %d reads), max write concurrency %d, forced staleness >= %d\n",
		st.Ops, st.Writes, st.Reads, st.MaxConcurrentWrites, st.ForcedStaleness)

	if *smallest {
		var kMin int
		var err error
		if *workers != 1 {
			// Chunk-level parallelism for a single register: per-segment
			// smallest-k probes fan out over the work-stealing pool.
			p, perr := prepare()
			if perr != nil {
				return perr
			}
			kMin, err = kat.SmallestKPreparedParallel(p, kat.Options{}, *workers)
		} else {
			kMin, err = kat.SmallestK(h, kat.Options{})
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smallest k: %d\n", kMin)
		return nil
	}

	if *weighted > 0 {
		rep, err := kat.CheckWeighted(h, *weighted, kat.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "weighted %d-atomic: %v\n", *weighted, rep.Atomic)
		if rep.Atomic && *showWit {
			printWitness(out, rep)
		}
		return nil
	}

	opts := kat.Options{}
	switch *algo {
	case "auto":
		opts.Algorithm = kat.AlgoAuto
	case "zones":
		opts.Algorithm = kat.AlgoZones
	case "lbt":
		opts.Algorithm = kat.AlgoLBT
	case "fzf":
		opts.Algorithm = kat.AlgoFZF
	case "oracle":
		opts.Algorithm = kat.AlgoOracle
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	var rep kat.Report
	if *workers != 1 && *algo != "lbt" {
		// Chunk-level parallelism for a single register: the history's
		// chunks (or safe-cut segments, k >= 3) verify concurrently.
		p, perr := prepare()
		if perr != nil {
			return perr
		}
		rep, err = kat.CheckPreparedParallel(p, *k, opts, *workers)
	} else {
		rep, err = kat.Check(h, *k, opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d-atomic: %v (algorithm: %v)\n", *k, rep.Atomic, rep.Algorithm)
	if rep.Atomic && *showWit {
		printWitness(out, rep)
	}
	if !rep.Atomic && *doShrink {
		kk := *k
		min := kat.Minimize(h, func(c *kat.History) bool {
			r, err := kat.Check(c, kk, kat.Options{})
			return err == nil && !r.Atomic
		})
		fmt.Fprintf(out, "minimal violating core (%d ops):\n%s", min.Len(), min)
	}
	if !rep.Atomic {
		return fmt.Errorf("history is not %d-atomic", *k)
	}
	return nil
}

// openInput resolves the positional argument: a path, or "-" / nothing for
// standard input.
func openInput(args []string) (io.ReadCloser, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(args[0])
}

// runKeyed verifies a materialized multi-register trace per key, fanning
// the keys out over a worker pool. The input streams through a buffered
// parser (no whole-file read).
func runKeyed(args []string, k, workers int, out io.Writer) error {
	in, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	tr, err := kat.ParseTraceReader(in)
	if err != nil {
		return err
	}
	rep := kat.CheckTraceParallel(tr, k, kat.Options{}, workers)
	printKeyed(out, rep, k)
	if !rep.Atomic() {
		return fmt.Errorf("trace is not %d-atomic (failing keys: %v)", k, rep.FailingKeys())
	}
	fmt.Fprintf(out, "trace: all %d keys are %d-atomic\n", len(rep.Keys), k)
	return nil
}

// runStream verifies a keyed trace straight from the input reader: memory
// stays bounded by the open segment windows and per-segment verdicts land
// while the input is still being consumed.
func runStream(args []string, k int, smallest bool, workers, horizon int, out io.Writer) error {
	in, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	sopts := kat.StreamOptions{Workers: workers, Horizon: horizon}

	if smallest {
		ks, stats, err := kat.StreamSmallestKByKey(in, kat.Options{}, sopts)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(ks))
		for key := range ks {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		var failing []string
		for _, key := range keys {
			fmt.Fprintf(out, "key %-12s smallest k: %d\n", key, ks[key])
			if ks[key] == 0 {
				failing = append(failing, key)
			}
		}
		printStreamStats(out, stats)
		if stats.SaturatedKeys > 0 {
			fmt.Fprintf(out, "note: %d key(s) exceeded the staleness horizon; their k is a lower bound (raise -horizon)\n",
				stats.SaturatedKeys)
		}
		if len(failing) > 0 {
			return fmt.Errorf("smallest-k verification failed for keys: %v", failing)
		}
		return nil
	}

	rep, stats, err := kat.StreamCheckTrace(in, k, kat.Options{}, sopts)
	if err != nil {
		return err
	}
	printKeyed(out, rep, k)
	printStreamStats(out, stats)
	if !rep.Atomic() {
		return fmt.Errorf("trace is not %d-atomic (failing keys: %v)", k, rep.FailingKeys())
	}
	fmt.Fprintf(out, "trace: all %d keys are %d-atomic\n", len(rep.Keys), k)
	return nil
}

// runStreamVerdicts verifies every property (smallest k, smallest Δ,
// regularity/safety) per key in one streaming pass and prints the combined
// per-key verdicts.
func runStreamVerdicts(args []string, workers, horizon int, out io.Writer) error {
	in, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	sopts := kat.StreamOptions{Workers: workers, Horizon: horizon, Properties: kat.PropertySetAll}
	kvs, stats, err := kat.StreamVerdictsByKey(in, kat.Options{}, sopts)
	if err != nil {
		return err
	}
	var failing []string
	for _, kv := range kvs {
		if kv.Err != nil {
			failing = append(failing, kv.Key)
			fmt.Fprintf(out, "key %-12s %4d ops  error: %v\n", kv.Key, kv.Ops, kv.Err)
			continue
		}
		line := fmt.Sprintf("key %-12s %4d ops  smallest k: %d  smallest Δ: %d  irregular: %d  unsafe: %d",
			kv.Key, kv.Ops, max(1, kv.SmallestK), kv.SmallestDelta, kv.IrregularReads, kv.UnsafeReads)
		if kv.Saturated || kv.DeltaSaturated {
			line += "  (k and Δ are horizon floors)"
		}
		fmt.Fprintln(out, line)
	}
	printStreamStats(out, stats)
	if stats.SaturatedKeys > 0 {
		fmt.Fprintf(out, "note: %d key(s) exceeded the staleness horizon; their k and Δ are lower bounds (raise -horizon)\n",
			stats.SaturatedKeys)
	}
	if len(failing) > 0 {
		return fmt.Errorf("verification failed for keys: %v", failing)
	}
	return nil
}

func printKeyed(out io.Writer, rep kat.TraceReport, k int) {
	for _, kr := range rep.Keys {
		status := fmt.Sprintf("%d-atomic: %v", k, kr.Atomic)
		if kr.Err != nil {
			status = "error: " + kr.Err.Error()
		}
		fmt.Fprintf(out, "key %-12s %4d ops  %s\n", kr.Key, kr.Ops, status)
	}
}

func printStreamStats(out io.Writer, st kat.StreamStats) {
	fmt.Fprintf(out, "stream: %d ops over %d keys in %d segments (%d merged back), peak window %d ops, peak live %d ops\n",
		st.Ops, st.Keys, st.Segments, st.Merges, st.MaxOpenOps, st.PeakBufferedOps)
	if st.FirstVerdictOps > 0 && st.Ops > 0 {
		fmt.Fprintf(out, "stream: first verdict after %d ops (%.1f%% of input)\n",
			st.FirstVerdictOps, 100*float64(st.FirstVerdictOps)/float64(st.Ops))
	}
	if st.StaleReads > 0 {
		fmt.Fprintf(out, "stream: %d read(s) crossed dispatched segments\n", st.StaleReads)
	}
}

func readHistory(args []string, asJSON bool) (*kat.History, error) {
	in, err := openInput(args)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	if asJSON {
		data, err := io.ReadAll(in)
		if err != nil {
			return nil, err
		}
		var h kat.History
		if err := h.UnmarshalJSON(data); err != nil {
			return nil, err
		}
		return &h, nil
	}
	return kat.ParseReader(in)
}

func printWitness(out io.Writer, rep kat.Report) {
	fmt.Fprintln(out, "witness order:")
	for _, idx := range rep.Witness {
		fmt.Fprintf(out, "  %s\n", rep.Prepared.Op(idx))
	}
}
