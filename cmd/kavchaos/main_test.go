package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"

	"kat/internal/chaosproxy"
	"kat/internal/online"
)

func TestFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"-shed", "1"}, &out); err == nil {
		t.Error("missing -target accepted")
	}
	if err := run([]string{"-target", "127.0.0.1:9001"}, &out); err == nil {
		t.Error("scheme-less -target accepted")
	}
}

// TestServeInjectsThenPassesThrough runs the proxy serve loop against a
// real kavserve backend: the shed budget burns on the first ingest, the
// next passes through cleanly, /verdict is never touched by faults, and
// the shutdown summary reports what was injected.
func TestServeInjectsThenPassesThrough(t *testing.T) {
	backend := httptest.NewServer(online.New(online.Config{K: 2}).Handler())
	defer backend.Close()

	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosproxy.New(httputil.NewSingleHostReverseProxy(u), chaosproxy.Faults{Shed503: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	var mu sync.Mutex
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- serve(ln, proxy, sigs, writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return out.Write(p)
		}))
	}()
	base := "http://" + ln.Addr().String()

	text := "w reg 1 0 1\nr reg 1 2 3\n"
	post := func() int {
		resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusServiceUnavailable {
		t.Fatalf("first ingest = %d, want 503 shed", code)
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("second ingest = %d, want clean pass-through", code)
	}
	resp, err := http.Get(base + "/verdict")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/verdict through proxy = %d", resp.StatusCode)
	}

	sigs <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	if !strings.Contains(output, "injected 1 faults (shed 1, reset 0, drop 0, torn 0)") {
		t.Fatalf("missing injection summary:\n%s", output)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
