// Command kavchaos is a fault-injecting reverse proxy for kavserve
// robustness testing: it fronts one node and spends configured budgets of
// failures against POST /ingest traffic — 503 sheds, connection resets,
// half-forwarded-then-dropped bodies, and torn responses — while passing
// every other endpoint through untouched, so retrying clients (and the
// cluster router) reconcile against the same proxy they ingest through.
//
// Usage:
//
//	kavserve -addr 127.0.0.1:9001 &
//	kavchaos -addr 127.0.0.1:9101 -target http://127.0.0.1:9001 \
//	  -shed 3 -reset 2 -drop 3 -torn 2
//	kavserve -route http://127.0.0.1:9101,... -addr :8080
//
// Once every budget is spent the proxy is a clean pass-through. On
// SIGINT/SIGTERM it reports how many faults of each kind were actually
// injected, so smoke scripts can assert the chaos really happened.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kat/internal/chaosproxy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavchaos", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8081", "listen address")
		target  = fs.String("target", "", "kavserve base URL to front (required)")
		shed    = fs.Int("shed", 0, "ingest requests to shed with 503 overload")
		reset   = fs.Int("reset", 0, "ingest requests to kill before forwarding")
		drop    = fs.Int("drop", 0, "ingest requests to half-forward then kill")
		torn    = fs.Int("torn", 0, "ingest requests to fully forward, then answer torn")
		latency = fs.Duration("latency", 0, "added to every proxied request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	u, err := url.Parse(*target)
	if err != nil {
		return fmt.Errorf("parsing -target: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("-target must be an http(s) base URL, got %q", *target)
	}
	proxy := chaosproxy.New(httputil.NewSingleHostReverseProxy(u), chaosproxy.Faults{
		Shed503: *shed,
		Reset:   *reset,
		Drop:    *drop,
		Torn:    *torn,
		Latency: *latency,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	return serve(ln, proxy, sigs, out)
}

func serve(ln net.Listener, proxy *chaosproxy.Proxy, shutdown <-chan os.Signal, out io.Writer) error {
	fmt.Fprintf(out, "kavchaos: fronting on %s\n", ln.Addr())
	hs := &http.Server{Handler: proxy, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-shutdown:
	}
	hs.Close()
	s, r, d, t := proxy.Injected()
	fmt.Fprintf(out, "kavchaos: injected %d faults (shed %d, reset %d, drop %d, torn %d)\n",
		s+r+d+t, s, r, d, t)
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	return nil
}
