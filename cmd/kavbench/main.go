// Command kavbench regenerates every experiment table recorded in
// EXPERIMENTS.md (the reproduction of the paper's figures and analytical
// claims).
//
// Usage:
//
//	kavbench              # run all experiments (E1..E10)
//	kavbench -exp e4,e7   # run a subset
//	kavbench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kat/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavbench", flag.ContinueOnError)
	var (
		which = fs.String("exp", "all", "comma-separated experiment IDs (e1..e10) or 'all'")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := exp.Registry()
	if *list {
		for _, id := range exp.Order() {
			fmt.Fprintf(out, "%-4s %s\n", strings.ToUpper(id), exp.Describe(id))
		}
		return nil
	}

	var ids []string
	if *which == "all" {
		ids = exp.Order()
	} else {
		for _, id := range strings.Split(*which, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e12)", id)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "running %s...\n", strings.ToUpper(id))
		tab := reg[id]()
		if err := tab.Render(out); err != nil {
			return err
		}
	}
	return nil
}
