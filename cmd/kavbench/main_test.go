package main

import (
	"strings"
	"testing"
)

func TestBenchList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s:\n%s", want, out.String())
		}
	}
}

func TestBenchSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "FZ2,FZ3,FZ4") {
		t.Errorf("E5 output wrong:\n%s", out.String())
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
