// Command kavserve is the online continuous-verification service: it accepts
// operation streams from many concurrent clients over HTTP, verifies them
// incrementally on a shared work-stealing pool, and serves live per-key
// verdicts (smallest k, status at the configured bound, violation
// witnesses).
//
// Usage:
//
//	kavserve -addr :8080 -k 2
//	kavgen -keys 64 -ops 500 -replay http://localhost:8080 -drain
//	curl localhost:8080/verdict
//	curl localhost:8080/metrics
//
// Ingest wants the keyed trace format, newline-delimited, each key's
// operations in nondecreasing start order (the natural order of an operation
// log; route each key through one client). On SIGINT/SIGTERM the server
// drains gracefully — open segments flush to final verdicts, which are
// printed before exit and stay queryable until the listener closes.
//
// With -route, kavserve becomes a cluster router instead of a verification
// node: it forwards ingest batches to the listed member nodes by key hash,
// health-checks them, and merges their verdicts — see the README's
// "Cluster mode" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kat"
	"kat/internal/checkpoint"
	"kat/internal/cluster"
	"kat/internal/faultfs"
	"kat/internal/online"
	"kat/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kavserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kavserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		k        = fs.Int("k", 2, "staleness bound keys are judged against in /verdict")
		workers  = fs.Int("workers", 0, "verification pool size (0 = GOMAXPROCS)")
		horizon  = fs.Int("horizon", 0, "smallest-k staleness horizon in writes (0 = default)")
		minSeg   = fs.Int("min-segment-ops", 0, "minimum open-window size before a quiescent cut (0 = default)")
		maxBuf   = fs.Int("max-buffered-ops", 0, "cap on live buffered operations across keys (0 = uncapped)")
		memo     = fs.Bool("memo", true, "cache segment verdicts by content hash")
		shards   = fs.Int("ingest-shards", 0, "ingest shard count: concurrent producers contend only per key-hash shard (0 = default)")
		propSet  = fs.String("properties", "k", "comma-separated properties verified in the same pass: k (always on), delta (smallest Δ), regularity (Lamport safety/regularity)")
		pprofOn  = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ with mutex and block profiling enabled (ingest-contention observability)")
		dataDir  = fs.String("data-dir", "", "durability directory: per-shard WAL + checkpoints; ingest survives crashes and restarts recover it (empty = in-memory only)")
		fsync    = fs.String("fsync", "batch", "WAL sync policy: batch (group fsync per ingest batch), always (fsync every record), never (OS page cache only)")
		ckptIval = fs.Duration("checkpoint-interval", 5*time.Second, "cadence of background checkpoints that bound WAL replay length")
		spillOps = fs.Int("spill-threshold-ops", 0, "verified-segment ops retained in memory per key before cold segments spill to -data-dir (0 = default; needs -data-dir)")
		overload = fs.Int64("overload-ops", 0, "shed /ingest with 503 + Retry-After once this many ops are buffered unverified (0 = never shed)")

		// Keyspace lifecycle.
		retireTTL = fs.String("retire-ttl", "", "retire a key quiescent past the safe-cut horizon for this long, folding its final verdict into a compact retired record; trace-time integer, or a Go duration for nanosecond-stamped traces (empty = never retire)")
		epochLen  = fs.String("epoch", "", "rotate verdict windows of this length at quiescent cuts; /verdict?epoch=N then answers per-window (trace-time integer or Go duration; empty = no epoch windows)")
		softWM    = fs.String("soft-watermark", "", "live-heap size (bytes, or with K/M/G suffix) above which ingest triggers aggressive retirement + spill (empty = off)")
		hardWM    = fs.String("hard-watermark", "", "live-heap size above which /ingest sheds with a typed memory_pressure 503 + Retry-After instead of growing toward OOM (empty = off)")

		// Multi-tenant mode.
		tenants     = fs.String("tenants", "", "multi-tenant mode: comma-separated tenant names, each an isolated session behind /ingest/{tenant} and /verdict/{tenant}, all sharing one verification pool")
		tenantOps   = fs.Int64("tenant-max-ops", 0, "per-tenant lifetime operation quota; exceeding it rejects with quota_exceeded (0 = unlimited)")
		tenantKeys  = fs.Int64("tenant-max-keys", 0, "per-tenant distinct-key quota (0 = unlimited)")
		tenantBuf   = fs.Int64("tenant-max-buffered", 0, "per-tenant live buffered-operation quota — the tenant memory bound; rejects are 503 + Retry-After and clear as verification catches up (0 = unlimited)")

		// Router mode.
		route       = fs.String("route", "", "router mode: comma-separated member base URLs; this process forwards by key hash instead of verifying locally")
		routeSlots  = fs.Int("route-slots", 0, "router partition granularity in slots (0 = default)")
		hopTimeout  = fs.Duration("hop-timeout", 5*time.Second, "router: deadline per forwarded request")
		probeIval   = fs.Duration("probe-interval", time.Second, "router: member health-probe cadence")
		brkThresh   = fs.Int("breaker-threshold", 3, "router: consecutive failures before a member's circuit breaker opens")
		brkCooldown = fs.Duration("breaker-cooldown", 3*time.Second, "router: open-breaker dwell before a half-open trial")
		fwdRetries  = fs.Int("forward-retries", 6, "router: retry attempts per forwarded sub-batch beyond the first")

		// HTTP server hardening (both modes).
		readHeaderTO = fs.Duration("read-header-timeout", 10*time.Second, "cap on reading a request's headers (slowloris guard)")
		readTO       = fs.Duration("read-timeout", 5*time.Minute, "cap on reading a whole request, headers+body (0 = unlimited)")
		idleTO       = fs.Duration("idle-timeout", 2*time.Minute, "cap on idle keep-alive connections")
		shutdownTO   = fs.Duration("shutdown-timeout", 10*time.Second, "grace for in-flight responses at shutdown before connections are closed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	ht := httpTimeouts{readHeader: *readHeaderTO, read: *readTO, idle: *idleTO, shutdown: *shutdownTO}
	if *route != "" {
		if *dataDir != "" {
			return fmt.Errorf("-route and -data-dir are mutually exclusive: the router holds no verification state")
		}
		if *tenants != "" {
			return fmt.Errorf("-route and -tenants are mutually exclusive: tenancy lives on the member nodes")
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigs)
		return serveRouter(ln, cluster.Config{
			Nodes:            splitNodes(*route),
			Slots:            *routeSlots,
			HopTimeout:       *hopTimeout,
			ProbeInterval:    *probeIval,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCooldown,
			ForwardRetries:   *fwdRetries,
		}, ht, sigs, out)
	}
	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	if *dataDir == "" && *spillOps > 0 {
		return fmt.Errorf("-spill-threshold-ops needs -data-dir")
	}
	properties, err := kat.ParseProperties(*propSet)
	if err != nil {
		return err
	}
	cfg := online.Config{K: *k, OverloadOps: *overload}
	cfg.Stream.Workers = *workers
	cfg.Stream.Horizon = *horizon
	cfg.Stream.MinSegmentOps = *minSeg
	cfg.Stream.MaxBufferedOps = *maxBuf
	cfg.Stream.IngestShards = *shards
	cfg.Stream.SpillThresholdOps = *spillOps
	cfg.Stream.Properties = properties
	if cfg.Stream.RetireTTL, err = parseTraceTime(*retireTTL, "-retire-ttl"); err != nil {
		return err
	}
	if cfg.Stream.EpochLength, err = parseTraceTime(*epochLen, "-epoch"); err != nil {
		return err
	}
	if cfg.SoftWatermarkBytes, err = parseByteSize(*softWM, "-soft-watermark"); err != nil {
		return err
	}
	if cfg.HardWatermarkBytes, err = parseByteSize(*hardWM, "-hard-watermark"); err != nil {
		return err
	}
	if *memo {
		cfg.Opts.Memo = kat.NewMemo()
	}
	if *tenants != "" {
		if *dataDir != "" {
			return fmt.Errorf("-tenants and -data-dir are mutually exclusive: the checkpoint layout assumes one session")
		}
		names := splitNodes(*tenants)
		if len(names) == 0 {
			return fmt.Errorf("-tenants is set but names no tenants")
		}
		// One shared pool for every tenant session; without this each
		// tenant would spin up its own worker set.
		pool := kat.NewPool(*workers)
		defer pool.Close()
		cfg.Stream.Pool = pool
		quotas := online.TenantQuotas{MaxOps: *tenantOps, MaxKeys: *tenantKeys, MaxBufferedOps: *tenantBuf}
		tcs := make([]online.TenantConfig, len(names))
		for i, name := range names {
			tcs[i] = online.TenantConfig{Name: name, Quotas: quotas}
		}
		multi, err := online.NewMulti(cfg, tcs)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigs)
		fmt.Fprintf(out, "kavserve: listening on %s (k=%d, properties=%s, tenants=%s)\n",
			ln.Addr(), *k, properties, strings.Join(multi.Tenants(), ","))
		return serveMulti(ln, multi, *pprofOn, ht, sigs, out)
	}
	var mgr *checkpoint.Manager
	if *dataDir != "" {
		mgr, err = checkpoint.Open(faultfs.OS(), *dataDir, checkpoint.Config{
			Policy:  policy,
			OnError: func(err error) { fmt.Fprintf(out, "kavserve: checkpoint error: %v\n", err) },
		})
		if err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	fmt.Fprintf(out, "kavserve: listening on %s (k=%d, properties=%s)\n", ln.Addr(), *k, properties)
	return serve(ln, cfg, mgr, *ckptIval, *pprofOn, ht, sigs, out)
}

// parseTraceTime parses a trace-time length: a plain integer (abstract
// trace-time units, matching synthetic traces), or a Go duration
// (nanoseconds, matching traces stamped with wall-clock UnixNano).
func parseTraceTime(s, flagName string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("%s: must be >= 0, got %d", flagName, n)
		}
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%s: want a trace-time integer or a Go duration, got %q", flagName, s)
	}
	return int64(d), nil
}

// parseByteSize parses a byte count: a plain integer, optionally with a
// K/M/G/T suffix (binary multiples; "KB"/"KiB" spellings accepted).
func parseByteSize(s, flagName string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	num := strings.ToLower(strings.TrimSpace(s))
	mult := uint64(1)
	for _, u := range []struct {
		suffix string
		mult   uint64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"tib", 1 << 40}, {"tb", 1 << 40}, {"t", 1 << 40},
	} {
		if strings.HasSuffix(num, u.suffix) {
			num, mult = strings.TrimSuffix(num, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(num), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: want bytes (optionally with K/M/G/T suffix), got %q", flagName, s)
	}
	return n * mult, nil
}

// splitNodes parses the -route node list.
func splitNodes(route string) []string {
	var nodes []string
	for _, n := range strings.Split(route, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// httpTimeouts hardens the HTTP server in both modes: header and
// whole-request read deadlines (slowloris and stalled-body guards), an
// idle keep-alive cap, and a bounded shutdown grace.
type httpTimeouts struct {
	readHeader, read, idle, shutdown time.Duration
}

func newHTTPServer(h http.Handler, ht httpTimeouts) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ht.readHeader,
		ReadTimeout:       ht.read,
		IdleTimeout:       ht.idle,
	}
}

// shutdownHTTP gives in-flight responses ht.shutdown to finish, then
// closes connections outright.
func shutdownHTTP(hs *http.Server, ht httpTimeouts) {
	ctx, cancel := context.WithTimeout(context.Background(), ht.shutdown)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
}

// serveRouter runs cluster-router mode: no local verification, only
// health-checked forwarding and verdict merging over the member nodes.
func serveRouter(ln net.Listener, cfg cluster.Config, ht httpTimeouts, shutdown <-chan os.Signal, out io.Writer) error {
	cfg.Logf = func(format string, args ...any) { fmt.Fprintf(out, "kavserve: "+format+"\n", args...) }
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "kavserve: routing on %s over %d node(s), %d slots\n",
		ln.Addr(), len(cfg.Nodes), rt.Partition().Slots())
	for i, node := range cfg.Nodes {
		fmt.Fprintf(out, "kavserve: node %d %s owns %s\n", i, node, rt.Partition().Range(i))
	}
	rt.Start()
	defer rt.Close()
	hs := newHTTPServer(rt.Handler(), ht)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-shutdown:
	}
	// The router holds no verdict state; members keep theirs. A cluster
	// drain is explicit (POST /drain) — shutdown just stops routing.
	fmt.Fprintln(out, "kavserve: router shutting down (members keep their state)")
	shutdownHTTP(hs, ht)
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	return nil
}

// withPprof mounts the net/http/pprof handlers next to the service mux and
// turns on the mutex and block profiles, so ingest lock contention is
// observable in production:
//
//	go tool pprof http://localhost:8080/debug/pprof/mutex
//	go tool pprof http://localhost:8080/debug/pprof/block
func withPprof(h http.Handler) http.Handler {
	// Sampling rates, not firehoses: 1-in-5 mutex contention events and
	// blocking events >= 100µs keep the profiles cheap enough to leave on.
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(int(100 * time.Microsecond / time.Nanosecond))
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the service on ln until a signal arrives, then drains the
// session, prints the final verdicts, and shuts the listener down. With a
// non-nil durability manager it first recovers any checkpoint + WAL tail
// from disk, logs batches through the manager while serving, and seals the
// drained state in a terminal checkpoint before exit.
func serve(ln net.Listener, cfg online.Config, mgr *checkpoint.Manager, ckptIval time.Duration, pprofOn bool, ht httpTimeouts, shutdown <-chan os.Signal, out io.Writer) error {
	srv, rs, err := online.NewDurable(cfg, mgr)
	if err != nil {
		return err
	}
	if mgr != nil {
		fmt.Fprintf(out, "kavserve: recovered checkpoint epoch %d (%d keys), replayed %d ops from %d WAL records (%d torn bytes dropped)\n",
			rs.CheckpointEpoch, rs.RestoredKeys, rs.ReplayedOps, rs.ReplayedRecords, rs.TornBytes)
		if srv.Verdict().Drained {
			fmt.Fprintln(out, "kavserve: recovered state is drained; serving final verdicts, ingest disabled")
		} else if ckptIval > 0 {
			mgr.Start(ckptIval)
		}
		defer mgr.Close()
	}
	handler := http.Handler(srv.Handler())
	if pprofOn {
		handler = withPprof(handler)
	}
	hs := newHTTPServer(handler, ht)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing to drain into.
		return err
	case <-shutdown:
	}
	fmt.Fprintln(out, "kavserve: draining...")
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(out, "kavserve: drain error: %v\n", err)
	}
	if mgr != nil {
		// Terminal checkpoint: the drained (Flushed) session state lands on
		// disk, so a restart serves final verdicts with zero WAL replay.
		if err := mgr.Checkpoint(); err != nil {
			fmt.Fprintf(out, "kavserve: terminal checkpoint error: %v\n", err)
		}
	}
	srv.Verdict().WriteText(out, "kavserve: final")
	// Shutdown (not Close): verdicts must stay queryable until in-flight
	// responses — a client's /drain or /verdict read — have completed.
	shutdownHTTP(hs, ht)
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	return nil
}

// serveMulti runs multi-tenant mode: one isolated session per tenant on a
// shared pool, drained together on shutdown.
func serveMulti(ln net.Listener, multi *online.Multi, pprofOn bool, ht httpTimeouts, shutdown <-chan os.Signal, out io.Writer) error {
	handler := http.Handler(multi.Handler())
	if pprofOn {
		handler = withPprof(handler)
	}
	hs := newHTTPServer(handler, ht)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-shutdown:
	}
	fmt.Fprintln(out, "kavserve: draining all tenants...")
	if err := multi.DrainAll(); err != nil {
		fmt.Fprintf(out, "kavserve: drain error: %v\n", err)
	}
	for _, name := range multi.Tenants() {
		srv, _ := multi.Tenant(name)
		srv.Verdict().WriteText(out, "kavserve: final ["+name+"]")
	}
	shutdownHTTP(hs, ht)
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	return nil
}
