package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"kat"
	"kat/internal/checkpoint"
	"kat/internal/cluster"
	"kat/internal/faultfs"
	"kat/internal/online"
	"kat/internal/wal"
)

// testTimeouts are the hardened HTTP server settings at test-friendly
// scale (tight shutdown so failed drains don't stall the suite).
func testTimeouts() httpTimeouts {
	return httpTimeouts{
		readHeader: 5 * time.Second,
		read:       time.Minute,
		idle:       time.Minute,
		shutdown:   5 * time.Second,
	}
}

func TestFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:0"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run([]string{"-fsync", "sometimes"}, &out); err == nil {
		t.Error("bogus -fsync policy accepted")
	}
	if err := run([]string{"-properties", "k,linearizability"}, &out); err == nil {
		t.Error("bogus -properties list accepted")
	}
	if err := run([]string{"-spill-threshold-ops", "100"}, &out); err == nil {
		t.Error("-spill-threshold-ops without -data-dir accepted")
	}
	if err := run([]string{"-route", "http://localhost:1", "-data-dir", "/tmp/x"}, &out); err == nil {
		t.Error("-route with -data-dir accepted")
	}
}

// TestServeRouterMode boots two real member serve loops and a router serve
// loop in front of them, drives a mixed-key trace through the router, and
// checks the coordinated cluster drain plus router shutdown.
func TestServeRouterMode(t *testing.T) {
	startMember := func() (string, chan os.Signal, chan error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := online.Config{K: 2}
		cfg.Stream.Workers = 2
		sigs := make(chan os.Signal, 1)
		done := make(chan error, 1)
		go func() { done <- serve(ln, cfg, nil, 0, false, testTimeouts(), sigs, io.Discard) }()
		return "http://" + ln.Addr().String(), sigs, done
	}
	m0, sigs0, done0 := startMember()
	m1, sigs1, done1 := startMember()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsigs := make(chan os.Signal, 1)
	var out strings.Builder
	var mu sync.Mutex
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	rdone := make(chan error, 1)
	go func() {
		rdone <- serveRouter(ln, cluster.Config{
			Nodes:         []string{m0, m1},
			ProbeInterval: 50 * time.Millisecond,
		}, testTimeouts(), rsigs, lockedOut)
	}()
	base := "http://" + ln.Addr().String()

	text := "w a 1 0 1\nw b 1 0 1\nw c 1 2 3\nr a 1 2 3\nr b 1 2 3\nr c 1 4 5\n"
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ingested": 6`) {
		t.Fatalf("router ingest: %s: %s", resp.Status, body)
	}
	dresp, err := http.Post(base+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cluster drain: %s: %s", dresp.Status, dbody)
	}
	var doc cluster.ClusterVerdict
	if err := json.Unmarshal(dbody, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Cluster || !doc.Drained || len(doc.Keys) != 3 {
		t.Fatalf("cluster drain doc: cluster=%v drained=%v keys=%d: %s", doc.Cluster, doc.Drained, len(doc.Keys), dbody)
	}

	rsigs <- os.Interrupt
	if err := <-rdone; err != nil {
		t.Fatalf("router serve: %v", err)
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	if !strings.Contains(output, "routing on") || !strings.Contains(output, "node 0 "+m0) {
		t.Fatalf("router startup log missing topology:\n%s", output)
	}
	sigs0 <- os.Interrupt
	sigs1 <- os.Interrupt
	if err := <-done0; err != nil {
		t.Fatalf("member 0: %v", err)
	}
	if err := <-done1; err != nil {
		t.Fatalf("member 1: %v", err)
	}
}

// TestServeDurableRestart runs the durable serve loop against a real on-disk
// data dir, drains via signal, then restarts from the same dir: the second
// run must recover the drained state and report final verdicts without any
// WAL replay.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	text := "w reg 1 0 2\nr reg 1 1 3\nw reg 2 4 6\nr reg 1 5 7\nr reg 2 8 9\n"

	runOnce := func(ingest string) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := checkpoint.Open(faultfs.OS(), dir, checkpoint.Config{Policy: wal.SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		cfg := online.Config{K: 2}
		cfg.Stream.Workers = 2
		cfg.Stream.MinSegmentOps = 1
		sigs := make(chan os.Signal, 1)
		var out strings.Builder
		var mu sync.Mutex
		lockedOut := writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return out.Write(p)
		})
		done := make(chan error, 1)
		go func() { done <- serve(ln, cfg, mgr, 50*time.Millisecond, false, testTimeouts(), sigs, lockedOut) }()
		base := "http://" + ln.Addr().String()
		if ingest != "" {
			resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(ingest))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest: %s", resp.Status)
			}
		}
		sigs <- os.Interrupt
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		return out.String()
	}

	first := runOnce(text)
	if !strings.Contains(first, "recovered checkpoint epoch -1") {
		t.Fatalf("first run should cold-start:\n%s", first)
	}
	if !strings.Contains(first, "key reg") || !strings.Contains(first, "smallest k: 1") {
		t.Fatalf("first run verdict missing:\n%s", first)
	}

	second := runOnce("")
	if !strings.Contains(second, "recovered state is drained") {
		t.Fatalf("second run should recover drained state:\n%s", second)
	}
	if !strings.Contains(second, "replayed 0 ops") {
		t.Fatalf("drained restart should replay nothing:\n%s", second)
	}
	if !strings.Contains(second, "key reg") || !strings.Contains(second, "smallest k: 1") {
		t.Fatalf("second run verdict missing:\n%s", second)
	}
}

// TestServeDrainOnSignal runs the full server loop on a real listener,
// ingests a trace, triggers the signal-driven graceful drain, and checks the
// final verdicts printed on shutdown match the offline checker.
func TestServeDrainOnSignal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := online.Config{K: 2}
	cfg.Stream.Workers = 2
	cfg.Stream.MinSegmentOps = 4
	sigs := make(chan os.Signal, 1)
	var out strings.Builder
	var mu sync.Mutex
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- serve(ln, cfg, nil, 0, true, testTimeouts(), sigs, lockedOut) }()
	base := "http://" + ln.Addr().String()

	// -pprof mounts the profile index (mutex/block enabled) next to the
	// service endpoints without shadowing them.
	resp0, err := http.Get(base + "/debug/pprof/mutex?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("pprof mutex profile: %s", resp0.Status)
	}

	tr := kat.NewTrace()
	for ki := 0; ki < 4; ki++ {
		h := kat.GenerateKAtomic(kat.GenConfig{Seed: int64(ki + 1), Ops: 50, Concurrency: 2, ReadFraction: 0.5})
		if ki%2 == 1 {
			h = kat.InjectStaleness(h, int64(ki+50), 0.6, 2)
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("reg-%d", ki), op)
		}
	}
	var text strings.Builder
	if err := kat.WriteTraceArrivalOrder(&text, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(text.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	var ing struct{ Ingested int }
	if err := json.Unmarshal(body, &ing); err != nil || ing.Ingested != tr.Len() {
		t.Fatalf("ingest response %s (err %v), want %d ops", body, err, tr.Len())
	}

	sigs <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	for key, wantK := range kat.SmallestKByKey(tr, kat.Options{}) {
		needle := fmt.Sprintf("smallest k: %d", wantK)
		found := false
		for _, line := range strings.Split(output, "\n") {
			if strings.Contains(line, "key "+key) && strings.Contains(line, needle) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("shutdown output missing %q for key %s:\n%s", needle, key, output)
		}
	}
	if !strings.Contains(output, "kavserve: final verdicts for 4 key(s)") {
		t.Fatalf("missing final summary:\n%s", output)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestServePropertiesDrain: a per-property session's final shutdown
// printout and /verdict both carry the Δ and regularity verdicts.
func TestServePropertiesDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := online.Config{K: 2}
	cfg.Stream.Workers = 1
	cfg.Stream.MinSegmentOps = 1
	cfg.Stream.Properties = kat.PropertySetAll
	sigs := make(chan os.Signal, 1)
	var out strings.Builder
	var mu sync.Mutex
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- serve(ln, cfg, nil, 0, false, testTimeouts(), sigs, lockedOut) }()
	base := "http://" + ln.Addr().String()

	text := "w a 1 0 1\nr a 1 2 3\nw a 2 4 5\nr a 2 6 7\n"
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
	vresp, err := http.Get(base + "/verdict")
	if err != nil {
		t.Fatal(err)
	}
	vbody, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	if !strings.Contains(string(vbody), `"properties": "k,delta,regularity"`) {
		t.Fatalf("/verdict missing properties header: %s", vbody)
	}

	sigs <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	if !strings.Contains(output, "smallest Δ: 0") || !strings.Contains(output, "irregular: 0  unsafe: 0") {
		t.Fatalf("final printout missing per-property verdicts:\n%s", output)
	}
}
