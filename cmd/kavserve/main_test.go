package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"kat"
	"kat/internal/online"
)

func TestFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:0"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestServeDrainOnSignal runs the full server loop on a real listener,
// ingests a trace, triggers the signal-driven graceful drain, and checks the
// final verdicts printed on shutdown match the offline checker.
func TestServeDrainOnSignal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := online.Config{K: 2}
	cfg.Stream.Workers = 2
	cfg.Stream.MinSegmentOps = 4
	sigs := make(chan os.Signal, 1)
	var out strings.Builder
	var mu sync.Mutex
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- serve(ln, cfg, true, sigs, lockedOut) }()
	base := "http://" + ln.Addr().String()

	// -pprof mounts the profile index (mutex/block enabled) next to the
	// service endpoints without shadowing them.
	resp0, err := http.Get(base + "/debug/pprof/mutex?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("pprof mutex profile: %s", resp0.Status)
	}

	tr := kat.NewTrace()
	for ki := 0; ki < 4; ki++ {
		h := kat.GenerateKAtomic(kat.GenConfig{Seed: int64(ki + 1), Ops: 50, Concurrency: 2, ReadFraction: 0.5})
		if ki%2 == 1 {
			h = kat.InjectStaleness(h, int64(ki+50), 0.6, 2)
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("reg-%d", ki), op)
		}
	}
	var text strings.Builder
	if err := kat.WriteTraceArrivalOrder(&text, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(text.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	var ing struct{ Ingested int }
	if err := json.Unmarshal(body, &ing); err != nil || ing.Ingested != tr.Len() {
		t.Fatalf("ingest response %s (err %v), want %d ops", body, err, tr.Len())
	}

	sigs <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	for key, wantK := range kat.SmallestKByKey(tr, kat.Options{}) {
		needle := fmt.Sprintf("smallest k: %d", wantK)
		found := false
		for _, line := range strings.Split(output, "\n") {
			if strings.Contains(line, "key "+key) && strings.Contains(line, needle) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("shutdown output missing %q for key %s:\n%s", needle, key, output)
		}
	}
	if !strings.Contains(output, "kavserve: final verdicts for 4 key(s)") {
		t.Fatalf("missing final summary:\n%s", output)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
