module kat

go 1.22
