package kat_test

import (
	"strings"
	"testing"

	"kat"
)

func TestQuickstartFlow(t *testing.T) {
	h := kat.MustParse("w 1 0 10; w 2 20 30; r 1 40 50")
	rep1, err := kat.Check(h, 1, kat.Options{})
	if err != nil {
		t.Fatalf("Check k=1: %v", err)
	}
	if rep1.Atomic {
		t.Error("stale read accepted at k=1")
	}
	rep2, err := kat.Check(h, 2, kat.Options{})
	if err != nil {
		t.Fatalf("Check k=2: %v", err)
	}
	if !rep2.Atomic {
		t.Error("1-stale read rejected at k=2")
	}
	if err := kat.ValidateWitness(rep2.Prepared, rep2.Witness, 2); err != nil {
		t.Errorf("witness: %v", err)
	}
	k, err := kat.SmallestK(h, kat.Options{})
	if err != nil || k != 2 {
		t.Errorf("SmallestK = %d, %v; want 2", k, err)
	}
}

func TestPublicGenerators(t *testing.T) {
	h := kat.GenerateKAtomic(kat.GenConfig{Seed: 1, Ops: 40, StalenessDepth: 1, Concurrency: 3})
	rep, err := kat.Check(h, 2, kat.Options{})
	if err != nil || !rep.Atomic {
		t.Fatalf("generated history: %v %+v", err, rep)
	}
	r := kat.GenerateRandom(kat.GenConfig{Seed: 2, Ops: 30, Concurrency: 4})
	if _, err := kat.Check(r, 2, kat.Options{}); err != nil {
		t.Fatalf("random history: %v", err)
	}
	mut := kat.InjectStaleness(h, 3, 0.5, 3)
	if mut.Len() != h.Len() {
		t.Error("InjectStaleness changed op count")
	}
}

func TestPublicQuorumPipeline(t *testing.T) {
	h, stats, err := kat.SimulateQuorum(kat.QuorumConfig{
		Seed: 7, Replicas: 3, ReadQuorum: 2, WriteQuorum: 2,
		Clients: 3, OpsPerClient: 10,
	})
	if err != nil {
		t.Fatalf("SimulateQuorum: %v", err)
	}
	if stats.CompletedWrites == 0 {
		t.Error("no completed writes")
	}
	if _, err := kat.SmallestK(h, kat.Options{}); err != nil {
		t.Fatalf("SmallestK on simulated history: %v", err)
	}
	dist := kat.SmallestKDistribution([]*kat.History{h}, kat.Options{})
	if dist.Total != 1 {
		t.Errorf("distribution total = %d", dist.Total)
	}
}

func TestPublicWeightedAndReduction(t *testing.T) {
	h := kat.MustParse("w 1 0 10 weight=2; w 2 20 30 weight=3; r 1 40 50")
	rep, err := kat.CheckWeighted(h, 5, kat.Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if !rep.Atomic {
		t.Error("bound 5 rejected separation 5")
	}
	bp := kat.BinPacking{Sizes: []int64{2, 2, 2}, Capacity: 3, Bins: 2}
	red, err := kat.ReduceBinPacking(bp)
	if err != nil {
		t.Fatalf("ReduceBinPacking: %v", err)
	}
	if red.Bound != 5 {
		t.Errorf("Bound = %d, want 5", red.Bound)
	}
	ok, err := kat.SolveBinPackingViaReduction(bp)
	if err != nil {
		t.Fatalf("SolveBinPackingViaReduction: %v", err)
	}
	if ok {
		t.Error("3x2 into two bins of 3 reported feasible")
	}
}

func TestPublicMinimize(t *testing.T) {
	h := kat.MustParse(`
w 1 0 10
w 2 20 30
w 3 40 50
r 1 60 70
w 9 100 110
r 9 120 130
`)
	min := kat.Minimize(h, func(c *kat.History) bool {
		rep, err := kat.Check(c, 2, kat.Options{})
		return err == nil && !rep.Atomic
	})
	if min.Len() != 4 {
		t.Errorf("minimized to %d ops, want 4:\n%s", min.Len(), min)
	}
}

func TestPublicAnomaliesAndStats(t *testing.T) {
	h := kat.MustParse("w 1 0 10; r 2 20 30")
	if as := kat.FindAnomalies(h); len(as) == 0 {
		t.Error("dangling read not reported")
	}
	st := kat.Measure(h)
	if st.Ops != 2 || st.Writes != 1 || st.Reads != 1 {
		t.Errorf("Measure = %+v", st)
	}
	n := kat.Normalize(kat.MustParse("w 1 0 10; w 2 10 20"))
	if _, err := kat.Prepare(n); err != nil {
		t.Errorf("Prepare after Normalize: %v", err)
	}
}

func TestPublicTraceAPI(t *testing.T) {
	tr, err := kat.ParseTrace("w x 1 0 10; r x 1 20 30; w y 1 5 15; w y 2 25 35; r y 1 45 55")
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	rep := kat.CheckTrace(tr, 1, kat.Options{})
	if rep.Atomic() {
		t.Error("trace with stale key accepted at k=1")
	}
	ks := kat.SmallestKByKey(tr, kat.Options{})
	if ks["x"] != 1 || ks["y"] != 2 {
		t.Errorf("SmallestKByKey = %v", ks)
	}
	k, key, ok := kat.WorstK(tr, kat.Options{})
	if !ok || k != 2 || key != "y" {
		t.Errorf("WorstK = %d,%q,%v", k, key, ok)
	}
}

func TestPublicDeltaAPI(t *testing.T) {
	h := kat.MustParse("w 1 0 10; w 2 20 30; r 1 40 50; r 2 60 70")
	ok, err := kat.CheckDelta(h, 0)
	if err != nil || ok {
		t.Errorf("CheckDelta(0) = %v, %v; want false", ok, err)
	}
	d, err := kat.SmallestDelta(h)
	if err != nil || d < 1 {
		t.Errorf("SmallestDelta = %d, %v; want >= 1", d, err)
	}
}

func TestPublicRendering(t *testing.T) {
	h := kat.MustParse("w 1 0 10; w 2 20 30; r 1 40 50")
	rep, err := kat.Check(h, 2, kat.Options{})
	if err != nil || !rep.Atomic {
		t.Fatalf("Check: %v %+v", err, rep)
	}
	var b strings.Builder
	if err := kat.RenderTimeline(&b, rep.Prepared, kat.RenderOptions{Witness: rep.Witness}); err != nil {
		t.Fatalf("RenderTimeline: %v", err)
	}
	if !strings.Contains(b.String(), "in witness") {
		t.Errorf("timeline missing witness annotations:\n%s", b.String())
	}
	b.Reset()
	if err := kat.RenderWitness(&b, rep.Prepared, rep.Witness); err != nil {
		t.Fatalf("RenderWitness: %v", err)
	}
	if !strings.Contains(b.String(), "staleness 1") {
		t.Errorf("witness list missing staleness:\n%s", b.String())
	}
}

func TestPublicParallelDistribution(t *testing.T) {
	corpus := []*kat.History{
		kat.GenerateKAtomic(kat.GenConfig{Seed: 1, Ops: 20, StalenessDepth: 0}),
		kat.GenerateKAtomic(kat.GenConfig{Seed: 2, Ops: 20, StalenessDepth: 1}),
	}
	d := kat.SmallestKDistributionParallel(corpus, kat.Options{}, 2)
	if d.Total != 2 || d.Errors != 0 {
		t.Errorf("distribution = %+v", d)
	}
}

func TestPublicProperties(t *testing.T) {
	h := kat.MustParse("w 1 0 10; w 2 20 30; r 1 40 50")
	p, err := kat.Prepare(kat.Normalize(h))
	if err != nil {
		t.Fatal(err)
	}
	v := kat.CheckProperties(p)
	if v.Regular || v.Safe {
		t.Errorf("isolated stale read classified %s", v.Summary())
	}
	// Yet the same history is 2-atomic — Section I's point.
	rep, err := kat.Check(h, 2, kat.Options{})
	if err != nil || !rep.Atomic {
		t.Errorf("2-atomic check: %v %+v", err, rep)
	}
}
