// Package kat verifies k-atomicity of read/write register histories.
//
// It is a complete implementation of "On the k-Atomicity-Verification
// Problem" (Golab, Hurwitz, Li; ICDCS 2013): the LBT and FZF 2-atomicity
// verification algorithms, the classical zone-based 1-atomicity
// (linearizability) test, an exact exponential decider for k >= 3, the
// weighted k-AV problem with its NP-completeness reduction from bin packing,
// and the supporting machinery — history model and normalization, workload
// generators, a quorum-replicated register simulator, staleness metrics, and
// counterexample minimization.
//
// A history is k-atomic iff there is a total order of its operations,
// consistent with their real-time intervals, in which every read returns one
// of the k freshest values. k=1 is atomicity/linearizability; k>=2 bounds
// the staleness that sloppy-quorum stores (Dynamo and its descendants) can
// exhibit.
//
// # Quick start
//
//	h := kat.MustParse("w 1 0 10; w 2 20 30; r 1 40 50")
//	rep, err := kat.Check(h, 2, kat.Options{}) // 2-atomic? (uses FZF)
//	k, err := kat.SmallestK(h, kat.Options{})  // smallest such k
//
// Histories are normalized automatically: timestamps are made distinct and
// writes shortened per the paper's Section II-C assumptions. True anomalies
// (a read without a matching write, or a read that finishes before its write
// starts) are reported as errors.
//
// # Throughput
//
// Batch callers should hold a Verifier: it owns the scratch arenas of the
// k=2 FZF hot path, which is allocation-free at steady state when reused
// across calls. Multi-register traces verify one register per key
// (k-atomicity is local), and CheckTraceParallel / SmallestKByKeyParallel
// fan the keys out over a worker pool — one Verifier per worker — with
// results identical to the sequential forms.
//
// Parallelism does not stop at key granularity: every parallel entry point
// schedules (key, chunk) work units on one shared work-stealing pool. A
// prepared history decomposes into independently verifiable chunks (Stage 1
// of FZF) and safe-cut segments, so a skewed trace with one hot key — or a
// single huge register checked via CheckPreparedParallel /
// SmallestKPreparedParallel — still saturates every worker: idle workers
// steal chunk units instead of waiting at key boundaries. Supplying a Memo
// via Options.Memo additionally caches chunk and segment verdicts by content
// hash, so repeated or incremental verification of overlapping traces skips
// already-proved units.
//
// # Streaming
//
// Traces too large to materialize verify straight from an io.Reader:
// StreamCheckTrace and StreamSmallestKByKey cut each register's history at
// safe cut points (real-time quiescence + value-closedness, under which
// per-segment verification is exact for every k) and dispatch closed
// segments to a verifier pool while parsing continues. Peak memory is
// bounded by the open windows — O(open segments), not O(trace) — verdicts
// start landing before the input is consumed, and the report matches
// CheckTraceParallel for any worker count. The input must arrive in
// nondecreasing start order per key (the natural order of an operation
// log); see trace.ErrOutOfOrder.
//
// # Online monitoring
//
// The same engine runs push-driven: an OnlineSession accepts operations as
// they happen (NewOnlineCheckSession / NewOnlineSmallestKSession), exposes
// live per-key verdict state, and drains to final verdicts on Flush —
// identical to the reader-driven forms on the same operations. Sessions can
// share one verification Pool, which is how cmd/kavserve serves many
// concurrent ingest clients with a single set of workers.
//
// Session ingest is sharded and batch-friendly: per-key state stripes over
// StreamOptions.IngestShards independently locked shards (so producers
// contend only on key-hash collisions, and stats read without any lock),
// and the batch entry points AppendBatch (pre-parsed KeyedOp slices),
// AppendTraceBatch (raw keyed text, zero-copy parsed in chunks), and
// AppendWire (the binary wire frame format of internal/wire, decoded
// without materializing text at all — WriteTraceWireArrivalOrder emits it)
// group each call's operations by shard and take each shard lock once per
// batch instead of once per operation — the ingest analogue of the
// verification pool's (key, chunk) fan-out. Verdicts are identical to
// op-granular Append for any shard count, batch boundaries, and codec.
package kat

import (
	"io"

	"kat/internal/core"
	"kat/internal/delta"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/metrics"
	"kat/internal/oracle"
	"kat/internal/quorum"
	"kat/internal/regularity"
	"kat/internal/render"
	"kat/internal/shrink"
	"kat/internal/trace"
	"kat/internal/wav"
	"kat/internal/witness"
)

// Core model types.
type (
	// Operation is a single read or write with a real-time interval.
	Operation = history.Operation
	// History is a collection of operations on one register.
	History = history.History
	// Kind distinguishes reads from writes.
	Kind = history.Kind
	// Prepared is a validated, sorted history with its dictating-write
	// index; witnesses reference operation indices within it.
	Prepared = history.Prepared
	// Anomaly is an assumption violation found in a raw history.
	Anomaly = history.Anomaly
	// Stats summarizes structural properties of a history.
	Stats = history.Stats
)

// Operation kinds.
const (
	KindWrite = history.KindWrite
	KindRead  = history.KindRead
)

// Verification types.
type (
	// Options tunes verification (algorithm selection, search budgets).
	Options = core.Options
	// Report is a verification outcome with witness and diagnostics.
	Report = core.Report
	// Algorithm selects a specific verification algorithm.
	Algorithm = core.Algorithm
	// Verifier is a reusable verification engine whose scratch buffers
	// persist across Check/SmallestK calls, making the k=2 hot path
	// allocation-free at steady state. Not safe for concurrent use; a
	// Report's Witness is valid only until the next call on the same
	// Verifier.
	Verifier = core.Verifier
)

// NewVerifier returns a reusable verification engine (see Verifier).
func NewVerifier() *Verifier { return core.NewVerifier() }

// Memo is a concurrency-safe verdict cache keyed by work-unit content hash:
// the chunk-parallel verification paths consult it before verifying a chunk
// or safe-cut segment, so repeated or incremental verification of
// overlapping traces skips already-proved units. Share one via Options.Memo.
type Memo = core.Memo

// MemoStats reports a Memo's hit/miss/entry counters.
type MemoStats = core.MemoStats

// NewMemo returns an empty verdict memo.
func NewMemo() *Memo { return core.NewMemo() }

// CheckPreparedParallel is CheckPrepared with chunk-level parallelism: the
// history's chunks (k=1, 2) or safe-cut segments (k >= 3) verify
// concurrently on a work-stealing pool of the given size (workers <= 0 uses
// GOMAXPROCS), so even a single register saturates multiple cores. Verdicts
// are identical to CheckPrepared for any worker count; for k=2 the witness
// is byte-identical too.
func CheckPreparedParallel(p *Prepared, k int, opts Options, workers int) (Report, error) {
	return core.CheckPreparedParallel(p, k, opts, workers)
}

// SmallestKPreparedParallel is the smallest-k search with per-segment probes
// fanned out over a work-stealing pool (workers <= 0 uses GOMAXPROCS); the
// result equals the sequential search by the segment-equivalence lemma.
func SmallestKPreparedParallel(p *Prepared, opts Options, workers int) (int, error) {
	return core.SmallestKPreparedParallel(p, opts, workers)
}

// Algorithm choices for Options.Algorithm.
const (
	AlgoAuto   = core.AlgoAuto
	AlgoZones  = core.AlgoZones
	AlgoLBT    = core.AlgoLBT
	AlgoFZF    = core.AlgoFZF
	AlgoOracle = core.AlgoOracle
)

// Workload tooling types.
type (
	// GenConfig parameterizes synthetic history generation.
	GenConfig = generator.Config
	// QuorumConfig parameterizes the replicated-register simulator.
	QuorumConfig = quorum.Config
	// QuorumStats summarizes a simulation run.
	QuorumStats = quorum.Stats
	// BinPacking is a bin-packing decision instance (Section V reduction).
	BinPacking = wav.BinPacking
	// Reduction is the Figure 5 bin-packing-to-k-WAV construction.
	Reduction = wav.Reduction
	// KDistribution is a smallest-k histogram over a corpus.
	KDistribution = metrics.KDistribution
)

// Parse reads a history from the compact text format: one operation per line
// or ';'-separated, "w <value> <start> <finish>" / "r <value> <start>
// <finish>", with optional "weight=N" and "client=N" attributes.
func Parse(text string) (*History, error) { return history.Parse(text) }

// MustParse is Parse that panics on malformed input (tests, examples).
func MustParse(text string) *History { return history.MustParse(text) }

// Normalize returns a copy of h satisfying the model assumptions that can be
// repaired without loss of generality: distinct timestamps and writes ending
// before their dictated reads. Check and SmallestK normalize internally;
// call this only when preparing histories manually.
func Normalize(h *History) *History { return history.Normalize(h) }

// FindAnomalies reports every model-assumption violation in h.
func FindAnomalies(h *History) []Anomaly { return history.FindAnomalies(h) }

// Prepare validates and indexes a (normalized) history.
func Prepare(h *History) (*Prepared, error) { return history.Prepare(h) }

// Measure computes structural statistics (op counts, max write concurrency).
func Measure(h *History) Stats { return history.Measure(h) }

// Check decides whether h is k-atomic. k=1 uses the Gibbons–Korach zone
// test, k=2 the FZF algorithm (LBT via Options.Algorithm), and k>=3 the
// exact search. The history is normalized internally.
func Check(h *History, k int, opts Options) (Report, error) {
	return core.Check(h, k, opts)
}

// CheckPrepared is Check for already-prepared histories.
func CheckPrepared(p *Prepared, k int, opts Options) (Report, error) {
	return core.CheckPrepared(p, k, opts)
}

// SmallestK returns the least k for which h is k-atomic.
func SmallestK(h *History, opts Options) (int, error) {
	return core.SmallestK(h, opts)
}

// CheckWeighted decides the weighted k-AV problem of Section V: for every
// read, the total weight of writes from its dictating write (inclusive) to
// the read must be at most bound. NP-complete in general; solved exactly.
func CheckWeighted(h *History, bound int64, opts Options) (Report, error) {
	return core.CheckWeighted(h, bound, opts)
}

// ValidateWitness checks independently that order proves p k-atomic.
func ValidateWitness(p *Prepared, order []int, k int) error {
	return witness.Validate(p, order, k)
}

// ReadStaleness reports each read's distance (in writes) from its dictating
// write under the given total order.
func ReadStaleness(p *Prepared, order []int) ([]int, error) {
	return metrics.ReadStaleness(p, order)
}

// GenerateKAtomic produces a history that is (cfg.StalenessDepth+1)-atomic
// by construction.
func GenerateKAtomic(cfg GenConfig) *History { return generator.KAtomic(cfg) }

// ZipfKeyCounts distributes total operations over keys with Zipfian skew of
// exponent s > 1 (key rank r gets ops proportional to 1/(r+1)^s) — the
// hot-key model kavgen's -zipf flag and the hot-key benchmarks use. The
// result is deterministic given the seed and sums to total.
func ZipfKeyCounts(seed int64, keys, total int, s float64) []int {
	return generator.ZipfCounts(seed, keys, total, s)
}

// GenerateRandom produces an unconstrained anomaly-free random history.
func GenerateRandom(cfg GenConfig) *History { return generator.Random(cfg) }

// ChurnConfig configures GenerateChurn; see generator.ChurnConfig.
type ChurnConfig = generator.ChurnConfig

// GenerateChurn produces the churning-keyspace workload: key lifetimes
// born at a fixed cadence that live briefly and quiesce forever (or, with
// NoQuiesce, never quiesce — the adversarial memory-pressure input).
// kavgen's -churn flag and the keyspace-lifecycle soak tests use it.
func GenerateChurn(cfg ChurnConfig) *Trace {
	tr := NewTrace()
	for _, ko := range generator.Churn(cfg) {
		tr.Add(ko.Key, ko.Op)
	}
	return tr
}

// GenerateLBTTrap builds the staircase construction that drives literal
// Figure 2 LBT (no iterative deepening, adversarial candidate order) into
// the pathological behavior Theorem 3.2's proof warns about.
func GenerateLBTTrap(chain, goods int) *History { return generator.LBTTrap(chain, goods) }

// InjectStaleness redirects a fraction of reads to older writes, deepening
// the history's smallest k.
func InjectStaleness(h *History, seed int64, fraction float64, extraDepth int) *History {
	return generator.InjectStaleness(h, seed, fraction, extraDepth)
}

// SimulateQuorum runs the Dynamo-style replicated-register simulator and
// returns the observed history.
func SimulateQuorum(cfg QuorumConfig) (*History, QuorumStats, error) {
	return quorum.Run(cfg)
}

// SmallestKDistribution computes the smallest-k histogram of a corpus.
func SmallestKDistribution(corpus []*History, opts Options) KDistribution {
	return metrics.SmallestKDistribution(corpus, opts)
}

// Minimize shrinks a failing history while pred holds (counterexample
// minimization; pred is typically "not 2-atomic").
func Minimize(h *History, pred func(*History) bool) *History {
	return shrink.Minimize(h, shrink.Predicate(pred))
}

// ReduceBinPacking builds the Figure 5 k-WAV instance for a bin-packing
// problem; the instance is weighted (Capacity+2)-atomic iff the packing is
// feasible (Theorem 5.1).
func ReduceBinPacking(bp BinPacking) (*Reduction, error) { return wav.Reduce(bp) }

// SolveBinPackingViaReduction decides a bin-packing instance through the
// k-WAV reduction (validates Theorem 5.1 empirically).
func SolveBinPackingViaReduction(bp BinPacking) (bool, error) {
	return wav.SolveViaReduction(bp, oracle.Options{})
}

// Multi-register and time-staleness types.
type (
	// Trace is a multi-register history; verification is per key
	// (k-atomicity is local, Section II-B).
	Trace = trace.Trace
	// TraceReport aggregates per-key verification outcomes.
	TraceReport = trace.Report
	// RenderOptions controls ASCII timeline rendering.
	RenderOptions = render.Options
)

// Pool is a shared verification worker pool: the work-stealing (key, chunk)
// scheduler every parallel entry point runs on. Hand one to
// StreamOptions.Pool so any number of concurrent streams and online
// sessions share a single set of workers (and their warm scratch arenas)
// instead of each spinning up its own; Close releases the workers.
type Pool = core.Pool

// NewPool starts a verification pool (workers <= 0 uses GOMAXPROCS).
func NewPool(workers int) *Pool { return core.NewPool(workers) }

// Online (push-driven) verification types.
type (
	// OnlineSession is the push-driven streaming engine: operations are
	// appended one at a time (from any number of goroutines) or in
	// shard-grouped batches (AppendBatch / AppendTraceBatch, which take
	// each ingest-shard lock once per batch), per-key verdict state is
	// observable live, and Flush is the graceful drain that makes the
	// verdicts final — identical to the reader-driven StreamCheckTrace /
	// StreamSmallestKByKey on the same operations.
	OnlineSession = trace.Session
	// OnlineKeyVerdict is one key's live state in an OnlineSession
	// snapshot.
	OnlineKeyVerdict = trace.KeyVerdict
	// KeyedOp pairs a register name with one operation — the element of
	// OnlineSession.AppendBatch.
	KeyedOp = trace.KeyedOp
)

// NewOnlineCheckSession opens a session verifying every key at bound k (the
// push form of StreamCheckTrace).
func NewOnlineCheckSession(k int, opts Options, sopts StreamOptions) (*OnlineSession, error) {
	return trace.NewCheckSession(k, opts, sopts)
}

// NewOnlineSmallestKSession opens a session computing each key's smallest k
// (the push form of StreamSmallestKByKey, same horizon semantics).
func NewOnlineSmallestKSession(opts Options, sopts StreamOptions) *OnlineSession {
	return trace.NewSmallestKSession(opts, sopts)
}

// Streaming verification types.
type (
	// StreamOptions tunes the streaming engine (workers, staleness
	// horizon, buffer cap, early exit, segment callbacks).
	StreamOptions = trace.StreamOptions
	// StreamStats describes a finished streaming run: segments, merges,
	// peak buffered operations, first-verdict position.
	StreamStats = trace.StreamStats
	// SegmentVerdict is the outcome of one verified segment, delivered to
	// StreamOptions.OnSegment.
	SegmentVerdict = trace.SegmentVerdict
	// Property identifies one consistency property the streaming engine can
	// verify (k-atomicity, Δ-atomicity, regularity/safety).
	Property = trace.Property
	// PropertySet selects the properties verified over one ingest pass
	// (StreamOptions.Properties); the zero value is k-atomicity only.
	PropertySet = trace.PropertySet
	// PropertyVerdict is one property's verdict over a verified segment
	// (SegmentVerdict.Props).
	PropertyVerdict = trace.PropertyVerdict
)

// Property identifiers and property-set masks (see StreamOptions.Properties).
const (
	PropertyKAtomicity = trace.PropertyKAtomicity
	PropertyDelta      = trace.PropertyDelta
	PropertyRegularity = trace.PropertyRegularity

	PropertySetK          = trace.PropertySetK
	PropertySetDelta      = trace.PropertySetDelta
	PropertySetRegularity = trace.PropertySetRegularity
	PropertySetAll        = trace.PropertySetAll
)

// ParseProperties parses a -properties flag value ("k,delta,regularity",
// case-insensitive, k implied) into a PropertySet.
func ParseProperties(list string) (PropertySet, error) {
	return trace.ParseProperties(list)
}

// NewTrace returns an empty multi-register trace.
func NewTrace() *Trace { return trace.New() }

// ParseTrace reads a keyed multi-register trace:
// "w <key> <value> <start> <finish>" per line.
func ParseTrace(text string) (*Trace, error) { return trace.Parse(text) }

// ParseReader reads a single-register history from r through a buffered
// line scanner, so memory is proportional to the operations rather than the
// raw text.
func ParseReader(r io.Reader) (*History, error) { return history.ParseReader(r) }

// ParseTraceReader is ParseTrace over an io.Reader (buffered, line at a
// time).
func ParseTraceReader(r io.Reader) (*Trace, error) { return trace.ParseReader(r) }

// WriteTraceArrivalOrder renders the trace in the keyed text format ordered
// by operation start time — the arrival order the streaming engine requires
// of its input.
func WriteTraceArrivalOrder(w io.Writer, t *Trace) error {
	return trace.WriteArrivalOrder(w, t)
}

// WriteTraceWireArrivalOrder renders the trace as a binary wire stream
// (frames of frameOps operations sharing one key dictionary; frameOps <= 0
// picks a sensible default, compress DEFLATEs frame payloads) in the same
// arrival order as WriteTraceArrivalOrder. The streaming readers
// (StreamCheckTrace, StreamSmallestKByKey, kavcheck -stream) sniff the
// format automatically, and OnlineSession.AppendWire and kavserve's binary
// /ingest accept it directly.
func WriteTraceWireArrivalOrder(w io.Writer, t *Trace, frameOps int, compress bool) error {
	return trace.WriteWireArrivalOrder(w, t, frameOps, compress)
}

// StreamCheckTrace verifies a multi-register trace read from r at bound k
// with parse, segmentation, and verification overlapped: memory stays
// bounded by the open segment windows and the report matches
// CheckTraceParallel on the same input (which must arrive in nondecreasing
// start order per key).
func StreamCheckTrace(r io.Reader, k int, opts Options, sopts StreamOptions) (TraceReport, StreamStats, error) {
	return trace.StreamCheck(r, k, opts, sopts)
}

// StreamSmallestKByKey computes each register's smallest k from a streamed
// trace (the maximum per-segment smallest k; exact up to
// StreamOptions.Horizon — deeper-stale keys report a lower bound and are
// counted in StreamStats.SaturatedKeys).
func StreamSmallestKByKey(r io.Reader, opts Options, sopts StreamOptions) (map[string]int, StreamStats, error) {
	return trace.StreamSmallestKByKey(r, opts, sopts)
}

// StreamVerdictsByKey computes every enabled property's per-key verdict
// (sopts.Properties; k-atomicity in smallest-k form is always included) from
// a streamed trace in one parse/cut/schedule pass. Key-sorted, in the shape
// OnlineSession.Snapshot produces.
func StreamVerdictsByKey(r io.Reader, opts Options, sopts StreamOptions) ([]OnlineKeyVerdict, StreamStats, error) {
	return trace.StreamVerdictsByKey(r, opts, sopts)
}

// CheckTrace verifies every register in the trace at bound k.
func CheckTrace(t *Trace, k int, opts Options) TraceReport {
	return trace.Check(t, k, opts)
}

// CheckTraceParallel is CheckTrace with per-key verification fanned out over
// a bounded worker pool (workers <= 0 uses GOMAXPROCS). The report is
// identical to CheckTrace's for any worker count.
func CheckTraceParallel(t *Trace, k int, opts Options, workers int) TraceReport {
	return trace.CheckParallel(t, k, opts, workers)
}

// SmallestKByKey computes the smallest k per register (0 marks keys whose
// verification failed).
func SmallestKByKey(t *Trace, opts Options) map[string]int {
	return trace.SmallestKByKey(t, opts)
}

// SmallestKByKeyParallel is SmallestKByKey over a bounded worker pool
// (workers <= 0 uses GOMAXPROCS); results are identical to the sequential
// form.
func SmallestKByKeyParallel(t *Trace, opts Options, workers int) map[string]int {
	return trace.SmallestKByKeyParallel(t, opts, workers)
}

// WorstK returns the largest per-key smallest-k in the trace and the key
// exhibiting it.
func WorstK(t *Trace, opts Options) (k int, key string, ok bool) {
	return trace.WorstK(t, opts)
}

// CheckDelta reports whether the history is Δ-atomic for the given time
// bound: atomic once every read may be up to d time units stale (the
// time-based staleness measure of Golab, Li, Shah, PODC 2011 — the paper's
// reference [10]).
func CheckDelta(h *History, d int64) (bool, error) { return delta.Check(h, d) }

// SmallestDelta returns the least Δ for which the history is Δ-atomic.
func SmallestDelta(h *History) (int64, error) { return delta.Smallest(h) }

// SmallestKDistributionParallel is SmallestKDistribution over a worker pool
// (workers <= 0 uses GOMAXPROCS); results are identical to the sequential
// form.
func SmallestKDistributionParallel(corpus []*History, opts Options, workers int) KDistribution {
	return metrics.SmallestKDistributionParallel(corpus, opts, workers)
}

// RenderTimeline draws the history as an ASCII Gantt chart, optionally
// annotated with a witness order.
func RenderTimeline(w io.Writer, p *Prepared, opts RenderOptions) error {
	return render.Timeline(w, p, opts)
}

// RenderWitness writes a witness as a numbered list with per-read staleness.
func RenderWitness(w io.Writer, p *Prepared, order []int) error {
	return render.WitnessOrder(w, p, order)
}

// RegularityVerdict reports the classical weak register properties of
// Section I: Lamport's safety and regularity (per-read checks, weaker than
// 1-atomicity, incomparable with k-atomicity for k >= 2).
type RegularityVerdict = regularity.Verdict

// CheckProperties classifies every read of the prepared history under
// safety and regularity.
func CheckProperties(p *Prepared) RegularityVerdict { return regularity.Check(p) }
