package kat_test

import (
	"testing"

	"kat"
	"kat/internal/history"
	"kat/internal/oracle"
)

// FuzzCheckersAgree feeds arbitrary parsed histories to all three 2-AV
// deciders and fails on any divergence — the end-to-end differential fuzz
// target. Inputs the model rejects (anomalies) are skipped; sizes are capped
// to keep the oracle tractable.
func FuzzCheckersAgree(f *testing.F) {
	seeds := []string{
		"w 1 0 10; w 2 20 30; r 1 40 50",
		"w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70",
		"w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70",
		"w 1 0 10; w 2 12 14; w 3 16 18; r 1 20 30",
		"w 9 0 10; r 9 100 110; w 1 20 25; w 2 40 45; w 3 60 65",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		h, err := kat.Parse(text)
		if err != nil || h.Len() > 24 {
			return
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			return
		}
		want, err := oracle.CheckK(p, 2, oracle.Options{MaxStates: 200_000})
		if err != nil {
			return // state budget blown on a pathological input: no verdict
		}
		lbtRep, err := kat.CheckPrepared(p, 2, kat.Options{Algorithm: kat.AlgoLBT})
		if err != nil {
			t.Fatalf("LBT errored on accepted input: %v", err)
		}
		fzfRep, err := kat.CheckPrepared(p, 2, kat.Options{Algorithm: kat.AlgoFZF})
		if err != nil {
			t.Fatalf("FZF errored on accepted input: %v", err)
		}
		if lbtRep.Atomic != want.Atomic || fzfRep.Atomic != want.Atomic {
			t.Fatalf("divergence on %q: oracle=%v lbt=%v fzf=%v",
				text, want.Atomic, lbtRep.Atomic, fzfRep.Atomic)
		}
		// CheckPrepared already witness-validates positive answers.
	})
}

// FuzzSmallestKConsistent checks the smallest-k search agrees with direct
// probes at k and k-1.
func FuzzSmallestKConsistent(f *testing.F) {
	f.Add("w 1 0 10; w 2 20 30; r 1 40 50")
	f.Add("w 1 0 10; r 1 20 30")
	f.Fuzz(func(t *testing.T, text string) {
		h, err := kat.Parse(text)
		if err != nil || h.Len() > 20 {
			return
		}
		k, err := kat.SmallestK(h, kat.Options{})
		if err != nil {
			return
		}
		rep, err := kat.Check(h, k, kat.Options{})
		if err != nil || !rep.Atomic {
			t.Fatalf("not atomic at its own smallest k=%d: %v (%q)", k, err, text)
		}
		if k > 1 {
			below, err := kat.Check(h, k-1, kat.Options{})
			if err == nil && below.Atomic {
				t.Fatalf("atomic below smallest k=%d (%q)", k, text)
			}
		}
	})
}
