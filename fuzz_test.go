package kat_test

import (
	"bytes"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"testing"

	"kat"
	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/trace"
	"kat/internal/wire"
)

// FuzzCheckersAgree feeds arbitrary parsed histories to all three 2-AV
// deciders and fails on any divergence — the end-to-end differential fuzz
// target. Inputs the model rejects (anomalies) are skipped; sizes are capped
// to keep the oracle tractable.
func FuzzCheckersAgree(f *testing.F) {
	seeds := []string{
		"w 1 0 10; w 2 20 30; r 1 40 50",
		"w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70",
		"w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70",
		"w 1 0 10; w 2 12 14; w 3 16 18; r 1 20 30",
		"w 9 0 10; r 9 100 110; w 1 20 25; w 2 40 45; w 3 60 65",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		h, err := kat.Parse(text)
		if err != nil || h.Len() > 24 {
			return
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			return
		}
		want, err := oracle.CheckK(p, 2, oracle.Options{MaxStates: 200_000})
		if err != nil {
			return // state budget blown on a pathological input: no verdict
		}
		lbtRep, err := kat.CheckPrepared(p, 2, kat.Options{Algorithm: kat.AlgoLBT})
		if err != nil {
			t.Fatalf("LBT errored on accepted input: %v", err)
		}
		fzfRep, err := kat.CheckPrepared(p, 2, kat.Options{Algorithm: kat.AlgoFZF})
		if err != nil {
			t.Fatalf("FZF errored on accepted input: %v", err)
		}
		if lbtRep.Atomic != want.Atomic || fzfRep.Atomic != want.Atomic {
			t.Fatalf("divergence on %q: oracle=%v lbt=%v fzf=%v",
				text, want.Atomic, lbtRep.Atomic, fzfRep.Atomic)
		}
		// CheckPrepared already witness-validates positive answers.
	})
}

// serializeByStart renders a trace in global start order — the arrival
// order the streaming engine requires (nondecreasing starts per key).
func serializeByStart(tr *kat.Trace) string {
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		panic(err)
	}
	return b.String()
}

// FuzzStreamTraceEquivalence feeds arbitrary keyed traces (canonicalized to
// the start-ordered arrival the stream engine requires) to both the
// monolithic and the streaming checkers and fails on any verdict
// divergence: per-key Atomic flags, op counts, error presence, and — when
// no key out-reaches the staleness horizon — the smallest-k maps.
func FuzzStreamTraceEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 1 5 15",
		"w a 1 0 10; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10; w a 2 20 30; w a 3 40 50; r a 1 60 70",
		"w a 1 0 10; r a 9 20 30",
		"r a 5 0 10; w a 5 20 30",
		"w a 1 0 10; w a 2 20 30; w a 1 40 50",
		"w a 9 0 100; w a 1 5 15; w a 2 20 30; r a 1 40 50",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() == 0 || tr.Len() > 120 || len(tr.Keys) > 12 {
			return
		}
		canon := serializeByStart(tr)
		tr, err = kat.ParseTraceReader(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical trace rejected: %v", err)
		}
		// MinSegmentOps 1 cuts at every quiescent instant, driving the
		// cut/merge/deque/cross-boundary machinery on every input (the
		// default of 128 would never cut on these <=120-op traces); the
		// second config covers the default whole-window batching.
		for _, k := range []int{1, 2} {
			mono := kat.CheckTraceParallel(tr, k, kat.Options{}, 1)
			for _, minSeg := range []int{1, 0} {
				rep, _, err := kat.StreamCheckTrace(strings.NewReader(canon), k, kat.Options{},
					kat.StreamOptions{Workers: 2, MinSegmentOps: minSeg})
				if err != nil {
					t.Fatalf("k=%d minSeg=%d: StreamCheckTrace: %v (%q)", k, minSeg, err, canon)
				}
				if len(rep.Keys) != len(mono.Keys) {
					t.Fatalf("k=%d: key counts differ (%q)", k, canon)
				}
				for i := range mono.Keys {
					m, s := mono.Keys[i], rep.Keys[i]
					if m.Key != s.Key || m.Ops != s.Ops || m.Atomic != s.Atomic ||
						(m.Err == nil) != (s.Err == nil) {
						t.Fatalf("k=%d minSeg=%d key %s: monolithic %+v vs stream %+v (%q)",
							k, minSeg, m.Key, m, s, canon)
					}
				}
			}
		}
		if tr.Len() > 60 {
			return // keep the k>=3 oracle out of fuzz hot loops
		}
		monoK := kat.SmallestKByKeyParallel(tr, kat.Options{}, 1)
		gotK, stats, err := kat.StreamSmallestKByKey(strings.NewReader(canon), kat.Options{},
			kat.StreamOptions{Workers: 2, MinSegmentOps: 1})
		if err != nil {
			t.Fatalf("StreamSmallestKByKey: %v (%q)", err, canon)
		}
		if stats.SaturatedKeys > 0 {
			return // beyond-horizon reads are documented as lower bounds
		}
		for key, k := range monoK {
			if gotK[key] != k {
				t.Fatalf("key %s: stream k=%d, monolithic k=%d (%q)", key, gotK[key], k, canon)
			}
		}
	})
}

// FuzzOnlineSessionEquivalence is the differential fuzz target for the
// push-driven engine: for arbitrary keyed traces (canonicalized to arrival
// order) an OnlineSession fed one operation at a time must produce exactly
// the verdicts of the reader-driven StreamCheckTrace / StreamSmallestKByKey
// on the same input — per-key Atomic flags, op counts, error presence, and
// (horizon permitting) the smallest-k maps — for both a private pool and a
// shared one, for randomized ingest shard counts, and for the batch ingest
// paths (AppendBatch at randomized batch boundaries, AppendTraceBatch over
// the raw text) — shard counts and batch splits are drawn from a PRNG
// seeded by the input's hash, so every corpus entry stays deterministic
// while the fuzzer sweeps the configuration space.
func FuzzOnlineSessionEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 1 5 15",
		"w a 1 0 10; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10; w a 2 20 30; w a 3 40 50; r a 1 60 70",
		"w a 1 0 10; r a 9 20 30",
		"w a 9 0 100; w a 1 5 15; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10; r a 1 12 14; w a 2 100 110; r a 2 112 114; w b 7 0 50; r b 7 60 70",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	pool := kat.NewPool(2)
	f.Cleanup(pool.Close)
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() == 0 || tr.Len() > 120 || len(tr.Keys) > 12 {
			return
		}
		canon := serializeByStart(tr)
		// Shard counts and batch boundaries vary per input, deterministically:
		// the PRNG seed is the canonical text's FNV hash.
		h := fnv.New64a()
		io.WriteString(h, canon)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		shardCounts := []int{1, 2 + rng.Intn(15)}
		var allOps []kat.KeyedOp
		err = trace.ParseStream(strings.NewReader(canon), func(key string, op kat.Operation) error {
			allOps = append(allOps, kat.KeyedOp{Key: key, Op: op})
			return nil
		})
		if err != nil {
			t.Fatalf("canonical trace unparsable: %v (%q)", err, canon)
		}
		feeds := []struct {
			name string
			feed func(*kat.OnlineSession) error
		}{
			{"append", func(sess *kat.OnlineSession) error {
				for _, ko := range allOps {
					if err := sess.Append(ko.Key, ko.Op); err != nil {
						return err
					}
				}
				return nil
			}},
			{"batch", func(sess *kat.OnlineSession) error {
				for off := 0; off < len(allOps); {
					end := off + 1 + rng.Intn(len(allOps)) // random batch boundary
					if end > len(allOps) {
						end = len(allOps)
					}
					if _, err := sess.AppendBatch(allOps[off:end]); err != nil {
						return err
					}
					off = end
				}
				return nil
			}},
			{"tracebatch", func(sess *kat.OnlineSession) error {
				_, err := sess.AppendTraceBatch(strings.NewReader(canon))
				return err
			}},
		}
		for _, k := range []int{1, 2} {
			for _, shards := range shardCounts {
				for _, sopts := range []kat.StreamOptions{
					{Workers: 2, MinSegmentOps: 1, IngestShards: shards},
					{Pool: pool, MinSegmentOps: 1, IngestShards: shards},
				} {
					want, _, werr := kat.StreamCheckTrace(strings.NewReader(canon), k, kat.Options{}, sopts)
					for _, f := range feeds {
						if f.name != "append" && sopts.Pool == nil {
							continue // batch paths: one pool config is enough per exec
						}
						sess, err := kat.NewOnlineCheckSession(k, kat.Options{}, sopts)
						if err != nil {
							t.Fatal(err)
						}
						ferr := f.feed(sess)
						serr := sess.Flush()
						if (werr == nil) != (serr == nil) {
							t.Fatalf("k=%d shards=%d %s: stream err %v vs session err %v (%q)",
								k, shards, f.name, werr, serr, canon)
						}
						if ferr != nil && serr == nil {
							t.Fatalf("k=%d shards=%d %s: feed errored (%v) but flush did not (%q)",
								k, shards, f.name, ferr, canon)
						}
						if serr != nil && f.name != "append" {
							// Batch ingest is non-transactional at shard
							// granularity: after an admission error the
							// ingested prefix may legitimately differ from
							// the reader-driven engine's consumed prefix.
							continue
						}
						got, _ := sess.Report()
						if len(got.Keys) != len(want.Keys) {
							t.Fatalf("k=%d shards=%d %s: key counts differ (%q)", k, shards, f.name, canon)
						}
						for i := range want.Keys {
							w, g := want.Keys[i], got.Keys[i]
							if w.Key != g.Key || w.Ops != g.Ops || w.Atomic != g.Atomic || (w.Err == nil) != (g.Err == nil) {
								t.Fatalf("k=%d shards=%d %s key %s: stream %+v vs online %+v (%q)",
									k, shards, f.name, w.Key, w, g, canon)
							}
						}
					}
				}
			}
		}
		sopts := kat.StreamOptions{Pool: pool, MinSegmentOps: 1, IngestShards: shardCounts[1]}
		wantK, stats, err := kat.StreamSmallestKByKey(strings.NewReader(canon), kat.Options{}, sopts)
		if err != nil {
			return // both engines reject; the check-mode pass above compared errors
		}
		sess := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
		if _, err := sess.AppendTraceBatch(strings.NewReader(canon)); err != nil {
			sess.Flush()
			return // admission errors were compared in check mode
		}
		sess.Flush()
		gotK, gotStats := sess.SmallestKByKey()
		if stats.SaturatedKeys > 0 || gotStats.SaturatedKeys > 0 {
			return // beyond-horizon reads are documented as lower bounds
		}
		for key, k := range wantK {
			if gotK[key] != k {
				t.Fatalf("key %s: online k=%d, stream k=%d (%q)", key, gotK[key], k, canon)
			}
		}
	})
}

// FuzzSchedulerEquivalence is the differential fuzz target for the (key,
// chunk) work-stealing scheduler: for arbitrary keyed traces it checks that
// chunk-scheduled verdicts and smallest-k values are identical to the
// sequential path for every worker count, at both trace level
// (CheckTraceParallel / SmallestKByKeyParallel) and single-register level
// (CheckPreparedParallel / SmallestKPreparedParallel), and that verdicts are
// unchanged when a shared Memo serves content-hash hits on a repeated run.
func FuzzSchedulerEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 1 5 15",
		"w a 1 0 10; w a 2 20 30; r a 1 40 50",
		"w a 1 0 30; w a 2 5 35; r a 2 40 50; r a 1 60 70",
		"w a 1 0 10; w a 2 12 14; w a 3 16 18; r a 1 20 30",
		"w a 9 0 10; r a 9 100 110; w a 1 20 25; w a 2 40 45; w a 3 60 65",
		"w a 1 0 10; r a 1 12 14; w a 2 100 110; r a 2 112 114; w b 7 0 50; r b 7 60 70",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() == 0 || tr.Len() > 100 || len(tr.Keys) > 8 {
			return
		}
		memo := kat.NewMemo()
		for _, k := range []int{1, 2, 3} {
			if k >= 3 && tr.Len() > 40 {
				continue // keep the oracle tractable
			}
			seq := kat.CheckTraceParallel(tr, k, kat.Options{}, 1)
			// MinParallelOps -1 forces chunk scheduling even on these tiny
			// fuzz traces, which would otherwise take the sequential path.
			for _, workers := range []int{2, 3, 4} {
				par := kat.CheckTraceParallel(tr, k, kat.Options{MinParallelOps: -1}, workers)
				diffTraceReports(t, "plain", k, workers, seq, par, text)
			}
			// Two memoized passes: the first mostly misses, the second is
			// all content-hash hits; both must match the sequential report.
			for pass := 0; pass < 2; pass++ {
				par := kat.CheckTraceParallel(tr, k, kat.Options{Memo: memo}, 3)
				diffTraceReports(t, "memo", k, 3, seq, par, text)
			}
		}
		seqK := kat.SmallestKByKeyParallel(tr, kat.Options{}, 1)
		for _, workers := range []int{2, 4} {
			parK := kat.SmallestKByKeyParallel(tr, kat.Options{MinParallelOps: -1}, workers)
			for key, want := range seqK {
				if parK[key] != want {
					t.Fatalf("workers=%d key %s: smallest k = %d, sequential %d (%q)",
						workers, key, parK[key], want, text)
				}
			}
		}
		// Single-register: chunk-level scheduling on each key's history.
		v := kat.NewVerifier()
		for _, key := range tr.SortedKeys() {
			p, err := kat.Prepare(kat.Normalize(tr.Keys[key]))
			if err != nil {
				continue
			}
			for _, k := range []int{1, 2} {
				seq, seqErr := v.CheckPrepared(p, k, kat.Options{})
				for _, workers := range []int{2, 4} {
					par, parErr := kat.CheckPreparedParallel(p, k, kat.Options{MinParallelOps: -1}, workers)
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("key %s k=%d workers=%d: err %v vs %v (%q)", key, k, workers, parErr, seqErr, text)
					}
					if seqErr != nil {
						continue
					}
					if par.Atomic != seq.Atomic {
						t.Fatalf("key %s k=%d workers=%d: atomic %v, sequential %v (%q)",
							key, k, workers, par.Atomic, seq.Atomic, text)
					}
					if par.Atomic && par.Witness != nil {
						if err := kat.ValidateWitness(p, par.Witness, k); err != nil {
							t.Fatalf("key %s k=%d workers=%d: invalid witness: %v (%q)", key, k, workers, err, text)
						}
					}
				}
			}
			seqSmall, seqErr := v.SmallestKPrepared(p, kat.Options{})
			parSmall, parErr := kat.SmallestKPreparedParallel(p, kat.Options{MinParallelOps: -1}, 4)
			if (seqErr == nil) != (parErr == nil) || (seqErr == nil && parSmall != seqSmall) {
				t.Fatalf("key %s: smallest k %d/%v, sequential %d/%v (%q)",
					key, parSmall, parErr, seqSmall, seqErr, text)
			}
		}
	})
}

func diffTraceReports(t *testing.T, mode string, k, workers int, seq, par kat.TraceReport, text string) {
	t.Helper()
	if len(par.Keys) != len(seq.Keys) {
		t.Fatalf("%s k=%d workers=%d: key counts differ (%q)", mode, k, workers, text)
	}
	for i := range seq.Keys {
		s, p := seq.Keys[i], par.Keys[i]
		if s.Key != p.Key || s.Ops != p.Ops || s.Atomic != p.Atomic || (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("%s k=%d workers=%d key %s: sequential %+v vs scheduled %+v (%q)",
				mode, k, workers, s.Key, s, p, text)
		}
	}
}

// FuzzSmallestKConsistent checks the smallest-k search agrees with direct
// probes at k and k-1.
func FuzzSmallestKConsistent(f *testing.F) {
	f.Add("w 1 0 10; w 2 20 30; r 1 40 50")
	f.Add("w 1 0 10; r 1 20 30")
	f.Fuzz(func(t *testing.T, text string) {
		h, err := kat.Parse(text)
		if err != nil || h.Len() > 20 {
			return
		}
		k, err := kat.SmallestK(h, kat.Options{})
		if err != nil {
			return
		}
		rep, err := kat.Check(h, k, kat.Options{})
		if err != nil || !rep.Atomic {
			t.Fatalf("not atomic at its own smallest k=%d: %v (%q)", k, err, text)
		}
		if k > 1 {
			below, err := kat.Check(h, k-1, kat.Options{})
			if err == nil && below.Atomic {
				t.Fatalf("atomic below smallest k=%d (%q)", k, text)
			}
		}
	})
}

// FuzzWireCodecEquivalence is the differential fuzz target for the binary
// wire codec. For arbitrary keyed traces it checks two properties the PR 7
// pipeline rests on: encode∘decode is the identity on the keyed operations
// (across hash-seeded frame boundaries and compression), and a session fed
// the binary stream produces exactly the per-key smallest-k verdicts of one
// fed the text rendering of the same trace.
func FuzzWireCodecEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 1 5 15",
		"w a 1 0 10; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10; w a 2 20 30; w a 3 40 50; r a 1 60 70",
		"w a 9 0 100; w a 1 5 15; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10 weight=3 client=2; r a 1 12 14 client=-1; w b 7 0 50; r b 7 60 70",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() == 0 || tr.Len() > 120 || len(tr.Keys) > 12 {
			return
		}
		canon := serializeByStart(tr)
		var ops []kat.KeyedOp
		if err := trace.ParseStream(strings.NewReader(canon), func(key string, op kat.Operation) error {
			ops = append(ops, kat.KeyedOp{Key: key, Op: op})
			return nil
		}); err != nil {
			t.Fatalf("canonical trace unparsable: %v (%q)", err, canon)
		}
		// Frame boundaries, compression, and shard count vary per input,
		// deterministically (PRNG seeded by the canonical text's hash).
		h := fnv.New64a()
		io.WriteString(h, canon)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		compress := rng.Intn(2) == 1
		shards := 1 + rng.Intn(8)
		enc := wire.NewEncoder()
		enc.SetCompress(compress)
		var stream []byte
		for i, ko := range ops {
			if err := enc.Add(ko.Key, ko.Op); err != nil {
				t.Fatalf("encode parsed op: %v (%q)", err, canon)
			}
			if rng.Intn(4) == 0 || i == len(ops)-1 {
				stream = enc.AppendFrame(stream)
			}
		}

		// Property 1: the decoded stream is the encoded operation sequence
		// (IDs excepted — the codec is identity-neutral like the text form).
		dec := wire.NewDecoder(bytes.NewReader(stream))
		var decoded []kat.KeyedOp
		for {
			frame, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("decode own encoding: %v (%q)", err, canon)
			}
			decoded = append(decoded, frame...)
		}
		if len(decoded) != len(ops) {
			t.Fatalf("decoded %d ops, encoded %d (%q)", len(decoded), len(ops), canon)
		}
		for i := range ops {
			a, b := ops[i], decoded[i]
			a.Op.ID, b.Op.ID = 0, 0
			if a != b {
				t.Fatalf("op %d: encoded %+v, decoded %+v (%q)", i, ops[i], decoded[i], canon)
			}
		}

		// Property 2: binary ingest reaches the very verdicts text ingest does.
		sopts := kat.StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards}
		textSess := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
		_, textErr := textSess.AppendTraceBatch(strings.NewReader(canon))
		textFlushErr := textSess.Flush()
		wireSess := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
		_, wireErr := wireSess.AppendWire(bytes.NewReader(stream))
		wireFlushErr := wireSess.Flush()
		if (textErr == nil) != (wireErr == nil) || (textFlushErr == nil) != (wireFlushErr == nil) {
			t.Fatalf("admission divergence: text %v/%v vs wire %v/%v (%q)",
				textErr, textFlushErr, wireErr, wireFlushErr, canon)
		}
		if textErr != nil || textFlushErr != nil {
			// Batch ingest is non-transactional at shard granularity; after an
			// admission error the accepted prefixes may legitimately differ.
			return
		}
		wantK, _ := textSess.SmallestKByKey()
		gotK, _ := wireSess.SmallestKByKey()
		if len(gotK) != len(wantK) {
			t.Fatalf("key counts differ: wire %v vs text %v (%q)", gotK, wantK, canon)
		}
		for key, k := range wantK {
			if gotK[key] != k {
				t.Fatalf("key %s: wire k=%d, text k=%d (%q)", key, gotK[key], k, canon)
			}
		}
	})
}

// FuzzMultiPropertyEquivalence is the differential fuzz target for the
// pluggable property checkers: for arbitrary keyed traces (canonicalized to
// arrival order) the reader-driven StreamVerdictsByKey and a drained
// push-driven session must agree exactly with each other, and both must
// agree with the offline checkers — smallest k, smallest Δ (exact when the
// staleness horizon was never out-reached, a sound floor otherwise), and
// regularity/safety offending-read counts, which are exact even across the
// horizon. Shard count, segment batching, and horizon are drawn from a PRNG
// seeded by the input's hash, so corpus entries stay deterministic while
// the fuzzer sweeps the configuration space.
func FuzzMultiPropertyEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 1 5 15",
		"w a 1 0 10; w a 2 20 30; r a 1 40 50",
		"w a 1 0 10; w a 2 20 30; w a 3 40 50; r a 1 60 70",
		"w a 1 0 10; r a 9 20 30",
		"w a 9 0 100; w a 1 5 15; w a 2 20 30; r a 1 40 50",
		"w a 1 0 1; w a 2 10 11; w a 3 20 21; w a 4 30 31; r a 1 50 51; w a 5 60 61",
		"w a 1 0 10; r a 1 12 14; w a 2 100 110; r a 2 112 114; w b 7 0 50; r b 7 60 70",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() == 0 || tr.Len() > 120 || len(tr.Keys) > 12 {
			return
		}
		canon := serializeByStart(tr)
		tr, err = kat.ParseTraceReader(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical trace rejected: %v", err)
		}
		h := fnv.New64a()
		io.WriteString(h, canon)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		sopts := kat.StreamOptions{
			Workers:       2,
			MinSegmentOps: 1,
			IngestShards:  1 + rng.Intn(8),
			Properties:    kat.PropertySetAll,
		}
		if rng.Intn(3) == 0 {
			sopts.MinSegmentOps = 0 // whole-window batching
		}
		if rng.Intn(3) == 0 {
			sopts.Horizon = 1 + rng.Intn(6) // drive the stale-read fold paths
		}

		kvs, _, err := kat.StreamVerdictsByKey(strings.NewReader(canon), kat.Options{}, sopts)
		if err != nil {
			return // admission rejected; the other fuzz targets compare admission
		}

		sess := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
		if _, err := sess.AppendTraceBatch(strings.NewReader(canon)); err != nil {
			sess.Flush()
			return // non-transactional batch admission; prefixes may differ
		}
		if err := sess.Flush(); err != nil {
			t.Fatalf("session flush errored after clean reader run: %v (%q)", err, canon)
		}
		skvs := sess.Snapshot()

		// Online vs reader-driven: identical, field by field.
		if len(skvs) != len(kvs) {
			t.Fatalf("session %d keys, reader %d (%q)", len(skvs), len(kvs), canon)
		}
		for i := range kvs {
			r, s := kvs[i], skvs[i]
			if r.Key != s.Key || r.Ops != s.Ops || (r.Err == nil) != (s.Err == nil) ||
				r.SmallestK != s.SmallestK || r.Saturated != s.Saturated ||
				r.SmallestDelta != s.SmallestDelta || r.DeltaSaturated != s.DeltaSaturated ||
				r.UnsafeReads != s.UnsafeReads || r.IrregularReads != s.IrregularReads {
				t.Fatalf("key %s: reader %+v vs session %+v (%q)", r.Key, r, s, canon)
			}
		}

		// Online vs offline, per key.
		for _, kv := range kvs {
			hist := tr.Keys[kv.Key]
			wantK, kerr := kat.SmallestK(hist, kat.Options{})
			if (kv.Err != nil) != (kerr != nil) {
				t.Fatalf("key %s: online err %v, offline err %v (%q)", kv.Key, kv.Err, kerr, canon)
			}
			if kv.Err != nil {
				continue
			}
			if kv.Saturated {
				if kv.SmallestK < 1 || kv.SmallestK > wantK {
					t.Fatalf("key %s: saturated k=%d outside (0, %d] (%q)", kv.Key, kv.SmallestK, wantK, canon)
				}
			} else if got := max(1, kv.SmallestK); got != wantK {
				t.Fatalf("key %s: online k=%d, offline %d (%q)", kv.Key, got, wantK, canon)
			}
			wantD, derr := kat.SmallestDelta(hist)
			if derr != nil {
				t.Fatalf("key %s: offline Δ errored where k did not: %v (%q)", kv.Key, derr, canon)
			}
			if kv.DeltaSaturated {
				if kv.SmallestDelta < 1 || kv.SmallestDelta > wantD {
					t.Fatalf("key %s: saturated Δ=%d outside (0, %d] (%q)", kv.Key, kv.SmallestDelta, wantD, canon)
				}
			} else if kv.SmallestDelta != wantD {
				t.Fatalf("key %s: online Δ=%d, offline %d (%q)", kv.Key, kv.SmallestDelta, wantD, canon)
			}
			p, perr := kat.Prepare(kat.Normalize(hist))
			if perr != nil {
				t.Fatalf("key %s: offline Prepare errored where k did not: %v (%q)", kv.Key, perr, canon)
			}
			rv := kat.CheckProperties(p)
			if kv.IrregularReads != len(rv.IrregularReads) || kv.UnsafeReads != len(rv.UnsafeReads) {
				t.Fatalf("key %s: online regularity %d/%d, offline %d/%d (%q)", kv.Key,
					kv.IrregularReads, kv.UnsafeReads, len(rv.IrregularReads), len(rv.UnsafeReads), canon)
			}
		}
	})
}

// FuzzRetirementEquivalence replays the same trace through a plain session
// and a session with quiescent-key retirement enabled (tiny TTL, sweep on
// every op) and demands identical per-property verdicts. Retirement is only
// verdict-neutral when the forced cuts are value-closed, so the harness
// simulates the retirement hazards conservatively (assuming a retirement
// whenever one is eligible) and skips traces where a later op could observe
// the freed state: an op starting at or before a possible carried cut, a
// write reusing a value from a retired lifetime, or a read referencing one.
func FuzzRetirementEquivalence(f *testing.F) {
	seeds := []string{
		"w a 1 0 10; r a 1 20 30; w b 5 100 110; w b 6 200 210; w a 2 300 310; r a 2 320 330",
		"w a 1 0 10; w a 2 20 30; w b 7 500 510; r b 7 520 530; w a 3 900 910; r a 3 920 930",
		"w x 1 0 5; r x 1 6 9; w y 2 10 15; w z 3 20 25; r y 2 30 35; w x 4 200 205; r x 4 210 215",
		"w a 1 0 10; w b 2 0 10; w c 3 0 10; r a 1 50 60; r b 2 70 80; r c 3 90 100",
		"w k 1 0 2; w k 2 3 5; r k 2 6 8; w m 9 40 42; r m 9 44 46; w k 3 80 82; r k 3 84 86",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := kat.ParseTrace(text)
		if err != nil || tr.Len() > 100 || len(tr.Keys) > 8 {
			return
		}
		canon := serializeByStart(tr)
		tr2, err := kat.ParseTraceReader(strings.NewReader(canon))
		if err != nil {
			return
		}
		_ = tr2

		var allOps []kat.KeyedOp
		err = trace.ParseStream(strings.NewReader(canon), func(key string, op kat.Operation) error {
			allOps = append(allOps, kat.KeyedOp{Key: key, Op: op})
			return nil
		})
		if err != nil || len(allOps) == 0 {
			return
		}

		h64 := fnv.New64a()
		io.WriteString(h64, canon)
		rng := rand.New(rand.NewSource(int64(h64.Sum64())))
		ttl := int64(1 + rng.Intn(24))

		// Hazard simulation: walk arrival order tracking, per key, the last
		// activity instant, the values written in the current lifetime and in
		// any (possibly) retired earlier lifetimes, and the latest cut a
		// retirement could have carried forward. Retirement is assumed to
		// fire whenever the watermark runs ttl past a key's last activity —
		// a superset of what the engine actually does, so surviving traces
		// are safe under every real retirement schedule.
		type keySim struct {
			lastFinish int64
			cut        int64
			vals       map[int64]bool
			old        map[int64]bool
		}
		sims := make(map[string]*keySim)
		wm := int64(-1) << 62
		for _, ko := range allOps {
			if ko.Op.Start > wm {
				wm = ko.Op.Start
			}
			ks := sims[ko.Key]
			if ks == nil {
				ks = &keySim{lastFinish: int64(-1) << 62, cut: int64(-1) << 62,
					vals: map[int64]bool{}, old: map[int64]bool{}}
				sims[ko.Key] = ks
			}
			// Any key (including this one) may have been retired before this
			// op arrived.
			for _, s := range sims {
				if s.lastFinish > int64(-1)<<61 && wm-s.lastFinish >= ttl {
					for v := range s.vals {
						s.old[v] = true
					}
					s.vals = map[int64]bool{}
					if s.lastFinish > s.cut {
						s.cut = s.lastFinish
					}
				}
			}
			if ko.Op.Start <= ks.cut {
				return // op could collide with a carried retirement cut
			}
			if ks.old[ko.Op.Value] {
				return // value crosses a retired lifetime: verdicts may differ
			}
			if !ko.Op.IsWrite() && !ks.vals[ko.Op.Value] && ko.Op.Value != 0 {
				// A read of a value not written in the current lifetime: the
				// plain run can resolve it against the full index, the
				// retired run cannot.
				seen := false
				for _, s := range sims {
					if s.vals[ko.Op.Value] {
						seen = true
						break
					}
				}
				if !seen {
					return
				}
			}
			if ko.Op.IsWrite() {
				ks.vals[ko.Op.Value] = true
			}
			if ko.Op.Start > ks.lastFinish {
				ks.lastFinish = ko.Op.Start
			}
			if ko.Op.Finish > ks.lastFinish {
				ks.lastFinish = ko.Op.Finish
			}
		}

		base := kat.NewOnlineSmallestKSession(kat.Options{}, kat.StreamOptions{
			Workers: 2, MinSegmentOps: 1, IngestShards: 1 + rng.Intn(4),
			Properties: kat.PropertySetAll,
		})
		life := kat.NewOnlineSmallestKSession(kat.Options{}, kat.StreamOptions{
			Workers: 2, MinSegmentOps: 1, IngestShards: 1 + rng.Intn(4),
			Properties: kat.PropertySetAll, RetireTTL: ttl, RetireSweepOps: 1,
		})

		for _, ko := range allOps {
			errB := base.Append(ko.Key, ko.Op)
			errL := life.Append(ko.Key, ko.Op)
			if (errB == nil) != (errL == nil) {
				t.Fatalf("append divergence key=%q op=%+v base=%v life=%v ttl=%d trace=%q",
					ko.Key, ko.Op, errB, errL, ttl, canon)
			}
			if errB != nil {
				return
			}
			if rng.Intn(5) == 0 {
				if err := life.RetireIdle(ttl); err != nil {
					t.Fatalf("RetireIdle: %v trace=%q", err, canon)
				}
			}
		}

		errB := base.Flush()
		errL := life.Flush()
		if (errB == nil) != (errL == nil) {
			t.Fatalf("flush divergence base=%v life=%v ttl=%d trace=%q", errB, errL, ttl, canon)
		}
		if errB != nil {
			return
		}

		want := base.Snapshot()
		got := life.Snapshot()
		if len(want) != len(got) {
			t.Fatalf("snapshot length %d vs %d ttl=%d trace=%q", len(want), len(got), ttl, canon)
		}
		for i := range want {
			r, s := want[i], got[i]
			if r.Key != s.Key || r.Ops != s.Ops || (r.Err == nil) != (s.Err == nil) {
				t.Fatalf("verdict divergence for %q ttl=%d:\n base=%+v\n life=%+v\n trace=%q",
					r.Key, ttl, r, s, canon)
			}
			if r.Err != nil {
				// Residual property fields are undefined once a key errors:
				// retirement cuts change how far the partial computation got.
				continue
			}
			if r.SmallestK != s.SmallestK || r.Saturated != s.Saturated ||
				r.SmallestDelta != s.SmallestDelta || r.DeltaSaturated != s.DeltaSaturated ||
				r.UnsafeReads != s.UnsafeReads || r.IrregularReads != s.IrregularReads {
				t.Fatalf("verdict divergence for %q ttl=%d:\n base=%+v\n life=%+v\n trace=%q",
					r.Key, ttl, r, s, canon)
			}
		}
	})
}
