GO ?= go

.PHONY: all build test race vet bench bench-baseline

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Record the hot-path benchmark families so future PRs can track the perf
# trajectory: BENCH_baseline.txt is benchstat-ready, BENCH_baseline.json
# wraps the same run with environment metadata.
BASELINE_BENCHES := BenchmarkFZF|BenchmarkFZFScratch|BenchmarkVerifierReuse|BenchmarkTraceParse|BenchmarkTraceCheckParallel

bench-baseline:
	$(GO) test -run '^$$' -bench '$(BASELINE_BENCHES)' -benchmem -count 6 . | tee BENCH_baseline.txt
	$(GO) run ./scripts/benchjson BENCH_baseline.txt > BENCH_baseline.json
