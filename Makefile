GO ?= go

.PHONY: all build test race vet bench bench-baseline bench-pr2 bench-pr3 bench-pr5 bench-pr6 bench-pr7 bench-pr9 bench-pr10 benchcmp cover crash-smoke cluster-smoke fuzz-crash

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Coverage gate: total statement coverage across every package must stay
# above COVER_MIN, so test-only packages (internal/refcheck and its
# differential/metamorphic suites) and the per-property checkers
# (internal/delta, internal/regularity — both in the ./... profile) cannot
# silently rot. The current total is ~83%; the gate sits below it with
# margin for incidental churn.
COVER_MIN ?= 75
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) run ./scripts/covercheck -min $(COVER_MIN) cover.out

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Record the hot-path benchmark families so future PRs can track the perf
# trajectory: BENCH_baseline.txt is benchstat-ready, BENCH_baseline.json
# wraps the same run with environment metadata.
#
# BenchmarkOnlineIngest records in a second pass at the exact -benchtime
# the benchcmp gate uses (its unit is one ingested operation, and the
# gate's normalization median spans every row, so baseline and gate must
# sample the family at the same iteration scale or the ingest rows skew
# the machine-speed factor for everything else).
BASELINE_CORE := BenchmarkFZF|BenchmarkFZFScratch|BenchmarkVerifierReuse|BenchmarkTraceParse|BenchmarkTraceCheckParallel|BenchmarkStreamCheck$$|BenchmarkHotKey|BenchmarkStreamCheckZipf
BASELINE_BENCHES := $(BASELINE_CORE)|BenchmarkOnlineIngest

#
# BenchmarkMultiProperty likewise records in its own pass at the gate's
# -benchtime: one iteration is a full 16k-op streaming pass (and the Δ
# binary search makes props=all ~10× props=k), so the default benchtime
# would burn minutes per count; -short skips its 1M-op replay rows, which
# are recorded by bench-pr9 instead.
#
# BenchmarkChurningKeyspace records at the gate's -benchtime too: one
# iteration is a full churn-trace replay, so the default benchtime would
# oversample it, and the gate's normalization needs matching scales.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BASELINE_CORE)' -benchmem -count 6 -timeout 60m . | tee BENCH_baseline.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOnlineIngest' -benchtime 20000x -benchmem -count 6 -timeout 30m . | tee -a BENCH_baseline.txt
	$(GO) test -short -run '^$$' -bench 'BenchmarkMultiProperty' -benchtime 20x -benchmem -count 6 -timeout 30m . | tee -a BENCH_baseline.txt
	$(GO) test -run '^$$' -bench 'BenchmarkChurningKeyspace' -benchtime 200x -benchmem -count 6 -timeout 30m . | tee -a BENCH_baseline.txt
	$(GO) run ./scripts/benchjson BENCH_baseline.txt > BENCH_baseline.json

# PR 2 trajectory record: the pinned families plus the 1M-op streaming vs
# monolithic comparison (throughput, allocs, sampled peak heap, live-op
# peak).
bench-pr2:
	$(GO) test -run '^$$' -bench '$(BASELINE_BENCHES)|BenchmarkStream1M' -benchmem -count 3 -timeout 30m . | tee BENCH_pr2.txt
	$(GO) run ./scripts/benchjson BENCH_pr2.txt > BENCH_pr2.json

# PR 3 trajectory record: the pinned families plus the hot-key chunk
# parallelism rows (single register, 64k ops, sequential vs 4 workers vs
# memoized) and the Zipf-skewed streaming workload.
bench-pr3:
	$(GO) test -run '^$$' -bench '$(BASELINE_BENCHES)|BenchmarkStream1M' -benchmem -count 3 -timeout 30m . | tee BENCH_pr3.txt
	$(GO) run ./scripts/benchjson BENCH_pr3.txt > BENCH_pr3.json

# PR 5 trajectory record: the pinned families plus the online batch-ingest
# matrix (1/4/8 producers × op-granular vs batched, with the locks/op
# custom metric) and the 1M-op streaming row.
bench-pr5:
	$(GO) test -run '^$$' -bench '$(BASELINE_BENCHES)|BenchmarkStream1M' -benchmem -count 3 -timeout 30m . | tee BENCH_pr5.txt
	$(GO) run ./scripts/benchjson BENCH_pr5.txt > BENCH_pr5.json

# PR 6 trajectory record: the pinned families plus the durable-ingest rows
# (BenchmarkOnlineIngest fsync=never/batch/always against real disk, with
# fsyncs/op and WAL bytes/op custom metrics). Run WITHOUT -short so the
# durability rows execute.
bench-pr6:
	$(GO) test -run '^$$' -bench '$(BASELINE_BENCHES)|BenchmarkStream1M' -benchmem -count 3 -timeout 30m . | tee BENCH_pr6.txt
	$(GO) run ./scripts/benchjson BENCH_pr6.txt > BENCH_pr6.json

# PR 7 trajectory record: the pinned families plus the wire-codec rows in
# BenchmarkOnlineIngest (decode=text|wire pure-codec comparison and
# codec=text|wire full session-ingest comparison, both at batch=512 with
# the bodyB/op payload-size metric). The ingest family reruns in a second
# pass at a higher -benchtime because its unit is one ingested operation.
bench-pr7:
	$(GO) test -run '^$$' -bench '$(BASELINE_CORE)|BenchmarkStream1M' -benchmem -count 3 -timeout 30m . | tee BENCH_pr7.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOnlineIngest' -benchtime 20000x -benchmem -count 4 -timeout 30m . | tee -a BENCH_pr7.txt
	$(GO) run ./scripts/benchjson BENCH_pr7.txt > BENCH_pr7.json

# PR 9 trajectory record: the pinned families plus the multi-property rows
# — k-only vs k+Δ+regularity in the same streaming pass, including the
# 1M-op replay (run WITHOUT -short so the 1M rows execute; MultiProperty
# gets its own low -benchtime pass, one iteration being a full replay).
bench-pr9:
	$(GO) test -run '^$$' -bench '$(BASELINE_CORE)' -benchmem -count 3 -timeout 30m . | tee BENCH_pr9.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOnlineIngest' -benchtime 20000x -benchmem -count 3 -timeout 30m . | tee -a BENCH_pr9.txt
	$(GO) test -run '^$$' -bench 'BenchmarkMultiProperty' -benchtime 3x -benchmem -count 3 -timeout 60m . | tee -a BENCH_pr9.txt
	$(GO) run ./scripts/benchjson BENCH_pr9.txt > BENCH_pr9.json

# PR 10 trajectory record: the churning-keyspace lifecycle rows (settled
# live-heap bytes per op and retire-rate, retirement off vs on) plus the
# pinned gate families for context.
bench-pr10:
	$(GO) test -run '^$$' -bench 'BenchmarkChurningKeyspace' -benchtime 200x -benchmem -count 3 -timeout 30m . | tee BENCH_pr10.txt
	$(GO) test -short -run '^$$' -bench '$(GATE_BENCHES)' -benchtime 500x -benchmem -count 3 -timeout 30m . | tee -a BENCH_pr10.txt
	$(GO) run ./scripts/benchjson BENCH_pr10.txt > BENCH_pr10.json

# End-to-end crash-recovery smoke: SIGKILL a durable kavserve, restart from
# its -data-dir, verify recovered verdicts against the offline checker.
crash-smoke:
	./scripts/crash_smoke.sh

# End-to-end cluster smoke: 3 member nodes + kavchaos fault proxy +
# kavserve -route, merged cluster verdicts diffed against the offline
# checker on the same trace.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Crash-point fuzzer: byte-granular kill points and injected I/O faults over
# the WAL + checkpoint recovery path (see internal/checkpoint). The CI smoke
# replays the committed corpus; this target digs for new counterexamples.
fuzz-crash:
	$(GO) test -fuzz '^FuzzCrashPointRecovery$$' -fuzztime 60s ./internal/checkpoint/

# Regression gate: rerun the pinned hot-path families (the fast scratch
# ones — the one-shot FZF sweep is too slow to repeat 1000x) and compare
# against the committed baseline. Repeated samples (-count) let the gate
# compare medians with an IQR-based noise floor (scripts/benchcmp), so
# scheduler jitter outliers don't fail CI while real regressions still do.
# BenchmarkOnlineIngest runs in a second pass with a higher -benchtime:
# its unit is one ingested operation, so 500 iterations would not even
# fill one 512-op batch. BenchmarkMultiProperty runs in a third pass at a
# LOWER -benchtime: one iteration is a full 16k-op streaming pass, so 500
# iterations would take minutes per count (-short also skips its 1M rows).
GATE_BENCHES := BenchmarkFZFScratch|BenchmarkVerifierReuse|BenchmarkTraceParse|BenchmarkTraceCheckParallel|BenchmarkStreamCheck$$

benchcmp:
	$(GO) test -short -run '^$$' -bench '$(GATE_BENCHES)' -benchtime 500x -benchmem -count 4 . > bench_current.txt || (cat bench_current.txt; exit 1)
	$(GO) test -short -run '^$$' -bench 'BenchmarkOnlineIngest' -benchtime 20000x -benchmem -count 4 . >> bench_current.txt || (cat bench_current.txt; exit 1)
	$(GO) test -short -run '^$$' -bench 'BenchmarkMultiProperty' -benchtime 20x -benchmem -count 4 . >> bench_current.txt || (cat bench_current.txt; exit 1)
	$(GO) test -short -run '^$$' -bench 'BenchmarkChurningKeyspace' -benchtime 200x -benchmem -count 4 . >> bench_current.txt || (cat bench_current.txt; exit 1)
	cat bench_current.txt
	$(GO) run ./scripts/benchcmp -baseline BENCH_baseline.json bench_current.txt
